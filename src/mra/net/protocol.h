// The mra wire protocol: CRC-framed, length-prefixed binary frames that
// carry XRA text toward the server and serialized relations back, reusing
// the storage layer's Encoder/Decoder (and PutRelation/GetRelation) so the
// network format is byte-compatible with the WAL/checkpoint encoding.
//
// Frame layout (all integers little-endian):
//
//   [u32 magic "MRA1"][u8 kind][u32 payload_len][u32 crc][payload bytes]
//
// where crc = Crc32(kind byte ++ payload).  The 13-byte header is fixed, so
// a reader pulls the header, validates magic/kind/length against its
// limits, then pulls exactly payload_len bytes and checks the CRC.
//
// Frame kinds and payloads (client → server unless noted):
//
//   Hello      u32 protocol_version, string peer_name.  First frame in each
//              direction; the server answers with its own Hello carrying
//              the negotiated version — min(client, server) — as long as
//              the client speaks ≥ kMinProtocolVersion, or an Error
//              carrying Unavailable otherwise (the server names both
//              versions so an old client's operator knows what to upgrade).
//   Query      At the negotiated version 2: string, one XRA relation
//              expression.  At version 3: u64 query_id, then the string —
//              the id the client minted, bound server-side for the whole
//              evaluation so traces, operator stats and slow-log entries
//              attribute to it.  Answered with a ResultSet of exactly one
//              relation, or Error.
//   Script     Same payload shape as Query (raw text at v2, id + text at
//              v3) carrying a whole XRA script.  Answered with a ResultSet
//              holding every `? E` result, or Error (the failing bracket
//              rolled back server-side).
//   ResultSet  (server) u32 n, then n relations, each encoded batch-wise:
//              the schema (storage::PutSchema) followed by row chunks
//              [u32 k > 0, then k × (tuple, u64 count)] and a final u32 0
//              terminator.  The server fills each chunk straight from one
//              executor RowBatch, so the wire format mirrors the engine's
//              batch-at-a-time execution (see docs/EXECUTION.md).  Protocol
//              version 1 encoded a relation as a distinct-count header plus
//              that many rows; version 2 is not decodable by v1 peers, hence
//              the version bump.  At version 3 the relations are followed
//              by u8 has_stats and, when 1, a WireQueryStats trailer — the
//              server-side per-query stats summary (per-phase latencies and
//              the per-operator metrics tree) that RemoteSession::Stats()
//              and EXPLAIN-style tooling surface client-side.
//   Error      (server) u8 StatusCode, string message.  At version 4 a
//              governed deadline kill (kDeadlineExceeded) appends a u32
//              retry-after hint — the same backoff floor a Busy frame
//              carries — so clients treat "killed for running too long
//              under load" and "shed at admission" uniformly.  Decoders
//              accept the hint from any peer and ignore it when absent.
//   Stats      empty request; the server answers with a Stats frame whose
//              payload is the metrics registry's JSON export.  An optional
//              string payload selects the export: "" or "json" (default),
//              "prom" (Prometheus text exposition), "text".
//   Ping       arbitrary payload; echoed back verbatim in a Ping frame.
//   Shutdown   empty.  The server acks with a Shutdown frame, then drains:
//              stops accepting, lets in-flight requests finish, closes.
//   Busy       (server) u32 retry_after_ms, string message.  Sent instead
//              of the server Hello when the server sheds load; the
//              connection is closed right after.  Clients surface it as
//              Unavailable and may reconnect after the hinted delay.
//   ServerStats (v3) u64 query_id request (0 = overview).  The server
//              answers with a ServerStats frame carrying a ServerStatsReply:
//              uptime, session registry (live sessions with their current
//              query), the query-latency histogram, shed/slow-query
//              counters, the slow-query log's JSON lines, and the trace
//              spans (filtered to query_id when nonzero).  Powers `\top`,
//              `\slowlog` and `\trace <id>` in xra_repl --connect.
//   Cancel     (v4) u64 query_id.  Requests cooperative cancellation of
//              the named in-flight query — on any session of this server,
//              so a second connection can kill the first's runaway plan
//              (`\cancel <id>`, REPL Ctrl-C).  The server answers with a
//              Cancel frame carrying u8 delivered (1 when a running or
//              about-to-run query matched); the killed query's own session
//              sees its request answered with Error kCancelled.

#ifndef MRA_NET_PROTOCOL_H_
#define MRA_NET_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mra/common/result.h"
#include "mra/core/relation.h"
#include "mra/obs/metrics.h"

namespace mra {
namespace net {

class Socket;

constexpr uint32_t kMagic = 0x3141524du;  // "MRA1" when read little-endian.
/// Version 2 introduced the chunked (batch-serialized) ResultSet encoding;
/// version 3 adds query ids, the ResultSet stats trailer and ServerStats;
/// version 4 adds the Cancel frame and the Error retry-after hint on
/// deadline kills (query governance).
constexpr uint32_t kProtocolVersion = 4;
/// Oldest client version the server still serves (with v2 payload shapes).
constexpr uint32_t kMinProtocolVersion = 2;
constexpr size_t kFrameHeaderBytes = 13;  // magic + kind + len + crc.

enum class FrameKind : uint8_t {
  kHello = 1,
  kQuery = 2,
  kScript = 3,
  kResultSet = 4,
  kError = 5,
  kStats = 6,
  kPing = 7,
  kShutdown = 8,
  kBusy = 9,
  kServerStats = 10,
  kCancel = 11,
};

/// Stable name for diagnostics, e.g. "Query".
std::string_view FrameKindName(FrameKind kind);

bool IsValidFrameKind(uint8_t kind);

struct Frame {
  FrameKind kind = FrameKind::kPing;
  std::string payload;
};

/// Per-connection wire limits; both sides enforce them on receive.
struct WireLimits {
  /// Upper bound on a frame's payload size.  A header announcing more is
  /// refused before any payload is read (anti-allocation-bomb).
  uint32_t max_frame_bytes = 16u << 20;
};

/// Renders a complete frame (header + payload) ready to send.
std::string EncodeFrame(FrameKind kind, std::string_view payload);

struct FrameHeader {
  FrameKind kind = FrameKind::kPing;
  uint32_t payload_len = 0;
  uint32_t crc = 0;
};

/// Parses and validates the fixed 13-byte header: magic, known kind, and
/// payload_len against `limits` (InvalidArgument when over the limit,
/// Corruption for malformed bytes).
Result<FrameHeader> ParseFrameHeader(std::string_view header,
                                     const WireLimits& limits);

/// Validates a received payload against its header's CRC.
Status CheckFramePayload(const FrameHeader& header, std::string_view payload);

/// One-shot decode of a complete frame image.  Refuses trailing bytes.
Result<Frame> DecodeFrame(std::string_view data, const WireLimits& limits);

// ---- blocking frame I/O over a Socket ----

/// Sends one frame; returns the bytes written on success.
Result<size_t> WriteFrame(Socket& sock, FrameKind kind,
                          std::string_view payload);

/// Receives one frame, enforcing `limits`; `timeout_ms` bounds each
/// underlying read (< 0 blocks indefinitely).
Result<Frame> ReadFrame(Socket& sock, const WireLimits& limits,
                        int timeout_ms);

// ---- payload builders / parsers ----

struct Hello {
  uint32_t version = 0;
  std::string peer;  // Client name or server banner.
};

std::string EncodeHello(uint32_t version, std::string_view peer);
Result<Hello> DecodeHello(std::string_view payload);

/// Error payload ⇄ Status (the status travels code + message).
std::string EncodeError(const Status& status);
/// Error payload with the v4 retry-after hint appended (deadline kills);
/// `retry_after_ms` 0 encodes the plain hintless form.
std::string EncodeErrorWithHint(const Status& status, uint32_t retry_after_ms);
/// Returns the transported (non-OK) status; Corruption on a bad payload.
/// Accepts (and discards) the optional v4 retry-after hint.
Status DecodeError(std::string_view payload);

/// A decoded Error plus its optional retry-after hint (0 when absent) —
/// what the client's backoff logic wants for deadline kills.
struct ErrorNotice {
  Status status;
  uint32_t retry_after_ms = 0;
};
Result<ErrorNotice> DecodeErrorNotice(std::string_view payload);

/// Cancel request payload: the client-minted id of the query to kill.
std::string EncodeCancelRequest(uint64_t query_id);
Result<uint64_t> DecodeCancelRequest(std::string_view payload);
/// Cancel reply payload: whether a matching query was found and tripped.
std::string EncodeCancelReply(bool delivered);
Result<bool> DecodeCancelReply(std::string_view payload);

/// Rows per ResultSet chunk.  Chunks are an encoding detail — any k > 0 per
/// chunk decodes identically — but the encoder emits at most this many rows
/// per chunk, matching the executor's default batch size.
constexpr uint32_t kResultSetChunkRows = 1024;

std::string EncodeResultSet(const std::vector<Relation>& relations);
Result<std::vector<Relation>> DecodeResultSet(std::string_view payload);

/// Query/Script request payload at protocol version 3: the client-minted
/// query id plus the XRA text.  (Version 2 sends the raw text alone.)
struct QueryRequest {
  uint64_t query_id = 0;
  std::string text;
};

std::string EncodeQueryRequest(uint64_t query_id, std::string_view text);
Result<QueryRequest> DecodeQueryRequest(std::string_view payload);

/// Per-operator stats as they travel on the wire — a mirror of
/// lang::QueryStats::OpStats flattened to plain integers (net stays
/// independent of the lang layer; session/session.cc converts).
struct WireOpStats {
  std::string name;
  uint32_t depth = 0;
  double estimated_rows = -1;
  uint64_t rows_emitted = 0;
  uint64_t batches_emitted = 0;
  uint64_t weighted_rows = 0;
  uint64_t distinct_rows = 0;
  uint64_t peak_hash_entries = 0;
  uint64_t build_rows = 0;
  uint64_t probe_rows = 0;
  uint64_t hash_bytes = 0;
  uint64_t time_ns = 0;
};

/// The ResultSet stats trailer: the server-side summary of the query that
/// produced the response (wire mirror of lang::QueryStats).
struct WireQueryStats {
  uint64_t query_id = 0;
  uint64_t result_rows = 0;
  uint64_t total_us = 0;
  uint64_t bind_us = 0;
  uint64_t optimize_us = 0;
  uint64_t lower_us = 0;
  uint64_t exec_us = 0;
  std::vector<WireOpStats> operators;  // Preorder, as in QueryStats.
};

/// v3 ResultSet: the v2 relation encoding followed by u8 has_stats and,
/// when set, the WireQueryStats trailer.  `stats == nullptr` encodes
/// has_stats = 0; DecodeResultSetWithStats then returns an empty optional
/// in `stats_out` (pass nullptr to skip the trailer entirely).
std::string EncodeResultSetWithStats(const std::vector<Relation>& relations,
                                     const WireQueryStats* stats);
Result<std::vector<Relation>> DecodeResultSetWithStats(
    std::string_view payload, std::optional<WireQueryStats>* stats_out);

/// One live session in a ServerStats reply.
struct ServerSessionInfo {
  uint64_t id = 0;
  std::string peer;
  std::string current_query;  // Truncated text; empty when idle.
  bool busy = false;          // A request is executing right now.
  uint64_t queries = 0;       // Query/Script requests served.
  uint64_t last_latency_us = 0;
  uint64_t idle_ms = 0;       // Milliseconds since the last request.
};

/// ServerStats reply: the server's live-introspection snapshot.
struct ServerStatsReply {
  uint64_t uptime_us = 0;
  uint64_t sessions_served = 0;
  uint32_t active_sessions = 0;
  uint64_t queries = 0;      // exec.queries counter.
  uint64_t sheds = 0;        // net.sheds counter.
  uint64_t slow_logged = 0;  // SlowQueryLog::total_logged().
  /// Server-side exec.query_us distribution; mergeable client-side
  /// because both ends share obs::Histogram's bucket layout.
  obs::HistogramData query_latency;
  std::vector<ServerSessionInfo> sessions;
  std::vector<std::string> slow_log;  // JSON lines, oldest first.
  std::string trace;  // Rendered spans (query-filtered when requested).
};

std::string EncodeServerStatsRequest(uint64_t query_id);
Result<uint64_t> DecodeServerStatsRequest(std::string_view payload);

std::string EncodeServerStatsReply(const ServerStatsReply& reply);
Result<ServerStatsReply> DecodeServerStatsReply(std::string_view payload);

/// Busy payload: the server's load-shed notice with a retry-after hint.
struct BusyNotice {
  uint32_t retry_after_ms = 0;
  std::string message;
};

std::string EncodeBusy(uint32_t retry_after_ms, std::string_view message);
Result<BusyNotice> DecodeBusy(std::string_view payload);

}  // namespace net
}  // namespace mra

#endif  // MRA_NET_PROTOCOL_H_
