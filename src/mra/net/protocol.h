// The mra wire protocol: CRC-framed, length-prefixed binary frames that
// carry XRA text toward the server and serialized relations back, reusing
// the storage layer's Encoder/Decoder (and PutRelation/GetRelation) so the
// network format is byte-compatible with the WAL/checkpoint encoding.
//
// Frame layout (all integers little-endian):
//
//   [u32 magic "MRA1"][u8 kind][u32 payload_len][u32 crc][payload bytes]
//
// where crc = Crc32(kind byte ++ payload).  The 13-byte header is fixed, so
// a reader pulls the header, validates magic/kind/length against its
// limits, then pulls exactly payload_len bytes and checks the CRC.
//
// Frame kinds and payloads (client → server unless noted):
//
//   Hello      u32 protocol_version, string peer_name.  First frame in each
//              direction; the server answers with its own Hello (version +
//              banner), or an Error carrying Unavailable on version
//              mismatch (the server names both versions so an old client's
//              operator knows what to upgrade).
//   Query      string: one XRA relation expression.  Answered with a
//              ResultSet of exactly one relation, or Error.
//   Script     string: a whole XRA script (statements, transactions, DDL).
//              Answered with a ResultSet holding every `? E` result, or
//              Error (the failing bracket rolled back server-side).
//   ResultSet  (server) u32 n, then n relations, each encoded batch-wise:
//              the schema (storage::PutSchema) followed by row chunks
//              [u32 k > 0, then k × (tuple, u64 count)] and a final u32 0
//              terminator.  The server fills each chunk straight from one
//              executor RowBatch, so the wire format mirrors the engine's
//              batch-at-a-time execution (see docs/EXECUTION.md).  Protocol
//              version 1 encoded a relation as a distinct-count header plus
//              that many rows; version 2 is not decodable by v1 peers, hence
//              the version bump.
//   Error      (server) u8 StatusCode, string message.
//   Stats      empty request; the server answers with a Stats frame whose
//              payload is the metrics registry's JSON export.
//   Ping       arbitrary payload; echoed back verbatim in a Ping frame.
//   Shutdown   empty.  The server acks with a Shutdown frame, then drains:
//              stops accepting, lets in-flight requests finish, closes.
//   Busy       (server) u32 retry_after_ms, string message.  Sent instead
//              of the server Hello when the server sheds load; the
//              connection is closed right after.  Clients surface it as
//              Unavailable and may reconnect after the hinted delay.

#ifndef MRA_NET_PROTOCOL_H_
#define MRA_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mra/common/result.h"
#include "mra/core/relation.h"

namespace mra {
namespace net {

class Socket;

constexpr uint32_t kMagic = 0x3141524du;  // "MRA1" when read little-endian.
/// Version 2 introduced the chunked (batch-serialized) ResultSet encoding.
constexpr uint32_t kProtocolVersion = 2;
constexpr size_t kFrameHeaderBytes = 13;  // magic + kind + len + crc.

enum class FrameKind : uint8_t {
  kHello = 1,
  kQuery = 2,
  kScript = 3,
  kResultSet = 4,
  kError = 5,
  kStats = 6,
  kPing = 7,
  kShutdown = 8,
  kBusy = 9,
};

/// Stable name for diagnostics, e.g. "Query".
std::string_view FrameKindName(FrameKind kind);

bool IsValidFrameKind(uint8_t kind);

struct Frame {
  FrameKind kind = FrameKind::kPing;
  std::string payload;
};

/// Per-connection wire limits; both sides enforce them on receive.
struct WireLimits {
  /// Upper bound on a frame's payload size.  A header announcing more is
  /// refused before any payload is read (anti-allocation-bomb).
  uint32_t max_frame_bytes = 16u << 20;
};

/// Renders a complete frame (header + payload) ready to send.
std::string EncodeFrame(FrameKind kind, std::string_view payload);

struct FrameHeader {
  FrameKind kind = FrameKind::kPing;
  uint32_t payload_len = 0;
  uint32_t crc = 0;
};

/// Parses and validates the fixed 13-byte header: magic, known kind, and
/// payload_len against `limits` (InvalidArgument when over the limit,
/// Corruption for malformed bytes).
Result<FrameHeader> ParseFrameHeader(std::string_view header,
                                     const WireLimits& limits);

/// Validates a received payload against its header's CRC.
Status CheckFramePayload(const FrameHeader& header, std::string_view payload);

/// One-shot decode of a complete frame image.  Refuses trailing bytes.
Result<Frame> DecodeFrame(std::string_view data, const WireLimits& limits);

// ---- blocking frame I/O over a Socket ----

/// Sends one frame; returns the bytes written on success.
Result<size_t> WriteFrame(Socket& sock, FrameKind kind,
                          std::string_view payload);

/// Receives one frame, enforcing `limits`; `timeout_ms` bounds each
/// underlying read (< 0 blocks indefinitely).
Result<Frame> ReadFrame(Socket& sock, const WireLimits& limits,
                        int timeout_ms);

// ---- payload builders / parsers ----

struct Hello {
  uint32_t version = 0;
  std::string peer;  // Client name or server banner.
};

std::string EncodeHello(uint32_t version, std::string_view peer);
Result<Hello> DecodeHello(std::string_view payload);

/// Error payload ⇄ Status (the status travels code + message).
std::string EncodeError(const Status& status);
/// Returns the transported (non-OK) status; Corruption on a bad payload.
Status DecodeError(std::string_view payload);

/// Rows per ResultSet chunk.  Chunks are an encoding detail — any k > 0 per
/// chunk decodes identically — but the encoder emits at most this many rows
/// per chunk, matching the executor's default batch size.
constexpr uint32_t kResultSetChunkRows = 1024;

std::string EncodeResultSet(const std::vector<Relation>& relations);
Result<std::vector<Relation>> DecodeResultSet(std::string_view payload);

/// Busy payload: the server's load-shed notice with a retry-after hint.
struct BusyNotice {
  uint32_t retry_after_ms = 0;
  std::string message;
};

std::string EncodeBusy(uint32_t retry_after_ms, std::string_view message);
Result<BusyNotice> DecodeBusy(std::string_view payload);

}  // namespace net
}  // namespace mra

#endif  // MRA_NET_PROTOCOL_H_
