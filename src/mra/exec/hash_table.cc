#include "mra/exec/hash_table.h"

namespace mra {
namespace exec {

namespace {

/// Out-of-line heap bytes of one key tuple: the value vector plus string
/// payloads (the Tuple object itself is counted via the arena's capacity).
size_t ApproxTupleBytes(const Tuple& t) {
  size_t bytes = t.arity() * sizeof(Value);
  for (const Value& v : t.values()) {
    if (v.kind() == TypeKind::kString) bytes += v.string_value().capacity();
  }
  return bytes;
}

}  // namespace

void HashKeyIndex::Reset() {
  num_keys_ = 0;
  key_bytes_ = 0;
  std::fill(slots_.begin(), slots_.end(), kEmpty);
}

void HashKeyIndex::Grow() {
  size_t new_size = slots_.empty() ? kInitialSlots : slots_.size() * 2;
  slots_.assign(new_size, kEmpty);
  size_t mask = new_size - 1;
  for (size_t id = 0; id < num_keys_; ++id) {
    size_t pos = hashes_[id] & mask;
    while (slots_[pos] != kEmpty) pos = (pos + 1) & mask;
    slots_[pos] = id;
  }
}

size_t HashKeyIndex::InsertKey(const Tuple& row,
                               const std::vector<size_t>& attrs,
                               bool* inserted) {
  // Grow at 70% load so linear probing stays short.
  if (slots_.empty() || (num_keys_ + 1) * 10 >= slots_.size() * 7) Grow();
  size_t h = row.HashKey(attrs);
  size_t mask = slots_.size() - 1;
  size_t pos = h & mask;
  while (true) {
    size_t id = slots_[pos];
    if (id == kEmpty) {
      if (num_keys_ == keys_.size()) {
        keys_.emplace_back();
        hashes_.emplace_back();
      }
      // Assign into the (possibly parked) arena slot: a recycled tuple's
      // value buffer is reused, so a steady-state rebuild is
      // allocation-free.
      keys_[num_keys_].AssignProjection(row, attrs);
      hashes_[num_keys_] = h;
      key_bytes_ += ApproxTupleBytes(keys_[num_keys_]);
      slots_[pos] = num_keys_;
      *inserted = true;
      return num_keys_++;
    }
    if (hashes_[id] == h && row.KeyEquals(keys_[id], attrs)) {
      *inserted = false;
      return id;
    }
    pos = (pos + 1) & mask;
  }
}

size_t HashKeyIndex::FindKey(const Tuple& row,
                             const std::vector<size_t>& attrs) const {
  if (slots_.empty() || num_keys_ == 0) return kNotFound;
  size_t h = row.HashKey(attrs);
  size_t mask = slots_.size() - 1;
  size_t pos = h & mask;
  while (true) {
    size_t id = slots_[pos];
    if (id == kEmpty) return kNotFound;
    if (hashes_[id] == h && row.KeyEquals(keys_[id], attrs)) return id;
    pos = (pos + 1) & mask;
  }
}

size_t HashKeyIndex::ApproxBytes() const {
  return slots_.capacity() * sizeof(size_t) +
         hashes_.capacity() * sizeof(size_t) +
         keys_.capacity() * sizeof(Tuple) + key_bytes_;
}

}  // namespace exec
}  // namespace mra
