#include "mra/exec/physical_planner.h"

namespace mra {
namespace exec {

namespace {

Result<PhysOpPtr> LowerPlanImpl(const PlanPtr& plan,
                                const RelationProvider& provider,
                                const CardinalityEstimator* estimator);

/// Picks and constructs the physical operator for one logical node.
Result<PhysOpPtr> LowerNode(const PlanPtr& plan,
                            const RelationProvider& provider,
                            const CardinalityEstimator* estimator) {
  switch (plan->kind()) {
    case PlanKind::kScan: {
      MRA_ASSIGN_OR_RETURN(const Relation* rel,
                           provider.GetRelation(plan->relation_name()));
      if (!rel->schema().CompatibleWith(plan->schema())) {
        return Status::Internal("relation " + plan->relation_name() +
                                " changed schema after planning");
      }
      return PhysOpPtr(std::make_unique<ScanOp>(rel));
    }
    case PlanKind::kConstRel:
      return PhysOpPtr(std::make_unique<ConstScanOp>(plan->const_relation()));
    case PlanKind::kSelect: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child,
                           LowerPlanImpl(plan->child(0), provider, estimator));
      return PhysOpPtr(
          std::make_unique<FilterOp>(plan->condition(), std::move(child)));
    }
    case PlanKind::kProject: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child,
                           LowerPlanImpl(plan->child(0), provider, estimator));
      return PhysOpPtr(std::make_unique<ComputeOp>(
          plan->projections(), plan->schema(), std::move(child)));
    }
    case PlanKind::kUnique: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child,
                           LowerPlanImpl(plan->child(0), provider, estimator));
      return PhysOpPtr(std::make_unique<DedupOp>(std::move(child)));
    }
    case PlanKind::kUnion: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr l,
                           LowerPlanImpl(plan->child(0), provider, estimator));
      MRA_ASSIGN_OR_RETURN(PhysOpPtr r,
                           LowerPlanImpl(plan->child(1), provider, estimator));
      return PhysOpPtr(
          std::make_unique<UnionAllOp>(std::move(l), std::move(r)));
    }
    case PlanKind::kDifference: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr l,
                           LowerPlanImpl(plan->child(0), provider, estimator));
      MRA_ASSIGN_OR_RETURN(PhysOpPtr r,
                           LowerPlanImpl(plan->child(1), provider, estimator));
      return PhysOpPtr(
          std::make_unique<DifferenceOp>(std::move(l), std::move(r)));
    }
    case PlanKind::kIntersect: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr l,
                           LowerPlanImpl(plan->child(0), provider, estimator));
      MRA_ASSIGN_OR_RETURN(PhysOpPtr r,
                           LowerPlanImpl(plan->child(1), provider, estimator));
      return PhysOpPtr(
          std::make_unique<IntersectOp>(std::move(l), std::move(r)));
    }
    case PlanKind::kProduct: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr l,
                           LowerPlanImpl(plan->child(0), provider, estimator));
      MRA_ASSIGN_OR_RETURN(PhysOpPtr r,
                           LowerPlanImpl(plan->child(1), provider, estimator));
      return PhysOpPtr(std::make_unique<NestedLoopJoinOp>(
          nullptr, std::move(l), std::move(r)));
    }
    case PlanKind::kJoin: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr l,
                           LowerPlanImpl(plan->child(0), provider, estimator));
      MRA_ASSIGN_OR_RETURN(PhysOpPtr r,
                           LowerPlanImpl(plan->child(1), provider, estimator));
      std::vector<size_t> left_keys, right_keys;
      ExprPtr residual;
      if (ExtractEquiJoinKeys(plan->condition(), plan->schema(),
                              plan->child(0)->schema().arity(), &left_keys,
                              &right_keys, &residual)) {
        return PhysOpPtr(std::make_unique<HashJoinOp>(
            std::move(left_keys), std::move(right_keys), std::move(residual),
            std::move(l), std::move(r)));
      }
      return PhysOpPtr(std::make_unique<NestedLoopJoinOp>(
          plan->condition(), std::move(l), std::move(r)));
    }
    case PlanKind::kGroupBy: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child,
                           LowerPlanImpl(plan->child(0), provider, estimator));
      return PhysOpPtr(std::make_unique<HashGroupByOp>(
          plan->group_keys(), plan->aggregates(), plan->schema(),
          std::move(child)));
    }
    case PlanKind::kClosure: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child,
                           LowerPlanImpl(plan->child(0), provider, estimator));
      return PhysOpPtr(std::make_unique<ClosureOp>(std::move(child)));
    }
  }
  return Status::Internal("bad plan kind");
}

Result<PhysOpPtr> LowerPlanImpl(const PlanPtr& plan,
                                const RelationProvider& provider,
                                const CardinalityEstimator* estimator) {
  MRA_ASSIGN_OR_RETURN(PhysOpPtr op, LowerNode(plan, provider, estimator));
  if (estimator != nullptr) op->set_estimated_rows((*estimator)(*plan));
  return op;
}

}  // namespace

Result<PhysOpPtr> LowerPlan(const PlanPtr& plan,
                            const RelationProvider& provider,
                            const CardinalityEstimator* estimator) {
  return LowerPlanImpl(plan, provider, estimator);
}

Result<Relation> ExecutePlan(const PlanPtr& plan,
                             const RelationProvider& provider) {
  MRA_ASSIGN_OR_RETURN(PhysOpPtr root, LowerPlan(plan, provider));
  return ExecuteToRelation(*root);
}

}  // namespace exec
}  // namespace mra
