#include "mra/exec/physical_planner.h"

namespace mra {
namespace exec {

namespace {

Result<PhysOpPtr> LowerPlanImpl(const PlanPtr& plan,
                                const RelationProvider& provider,
                                const CardinalityEstimator* estimator,
                                const PlannerOptions& options);

/// Picks and constructs the physical operator for one logical node.
Result<PhysOpPtr> LowerNode(const PlanPtr& plan,
                            const RelationProvider& provider,
                            const CardinalityEstimator* estimator,
                            const PlannerOptions& options) {
  switch (plan->kind()) {
    case PlanKind::kScan: {
      MRA_ASSIGN_OR_RETURN(const Relation* rel,
                           provider.GetRelation(plan->relation_name()));
      if (!rel->schema().CompatibleWith(plan->schema())) {
        return Status::Internal("relation " + plan->relation_name() +
                                " changed schema after planning");
      }
      return PhysOpPtr(std::make_unique<ScanOp>(rel));
    }
    case PlanKind::kConstRel:
      return PhysOpPtr(std::make_unique<ConstScanOp>(plan->const_relation()));
    case PlanKind::kSelect: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child,
                           LowerPlanImpl(plan->child(0), provider, estimator, options));
      return PhysOpPtr(
          std::make_unique<FilterOp>(plan->condition(), std::move(child)));
    }
    case PlanKind::kProject: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child,
                           LowerPlanImpl(plan->child(0), provider, estimator, options));
      return PhysOpPtr(std::make_unique<ComputeOp>(
          plan->projections(), plan->schema(), std::move(child)));
    }
    case PlanKind::kUnique: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child,
                           LowerPlanImpl(plan->child(0), provider, estimator, options));
      if (!options.hash_ops) {
        PhysOpPtr op(std::make_unique<SortDedupOp>(std::move(child)));
        op->set_annotation("fallback: hash ops disabled");
        return op;
      }
      return PhysOpPtr(std::make_unique<DedupOp>(std::move(child)));
    }
    case PlanKind::kUnion: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr l,
                           LowerPlanImpl(plan->child(0), provider, estimator, options));
      MRA_ASSIGN_OR_RETURN(PhysOpPtr r,
                           LowerPlanImpl(plan->child(1), provider, estimator, options));
      return PhysOpPtr(
          std::make_unique<UnionAllOp>(std::move(l), std::move(r)));
    }
    case PlanKind::kDifference: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr l,
                           LowerPlanImpl(plan->child(0), provider, estimator, options));
      MRA_ASSIGN_OR_RETURN(PhysOpPtr r,
                           LowerPlanImpl(plan->child(1), provider, estimator, options));
      return PhysOpPtr(
          std::make_unique<DifferenceOp>(std::move(l), std::move(r)));
    }
    case PlanKind::kIntersect: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr l,
                           LowerPlanImpl(plan->child(0), provider, estimator, options));
      MRA_ASSIGN_OR_RETURN(PhysOpPtr r,
                           LowerPlanImpl(plan->child(1), provider, estimator, options));
      return PhysOpPtr(
          std::make_unique<IntersectOp>(std::move(l), std::move(r)));
    }
    case PlanKind::kProduct: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr l,
                           LowerPlanImpl(plan->child(0), provider, estimator, options));
      MRA_ASSIGN_OR_RETURN(PhysOpPtr r,
                           LowerPlanImpl(plan->child(1), provider, estimator, options));
      return PhysOpPtr(std::make_unique<NestedLoopJoinOp>(
          nullptr, std::move(l), std::move(r)));
    }
    case PlanKind::kJoin: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr l,
                           LowerPlanImpl(plan->child(0), provider, estimator, options));
      MRA_ASSIGN_OR_RETURN(PhysOpPtr r,
                           LowerPlanImpl(plan->child(1), provider, estimator, options));
      std::vector<size_t> left_keys, right_keys;
      ExprPtr residual;
      size_t left_arity = plan->child(0)->schema().arity();
      if (options.hash_ops &&
          ExtractEquiJoinKeys(plan->condition(), plan->schema(), left_arity,
                              &left_keys, &right_keys, &residual)) {
        std::string keys = "keys:";
        for (size_t i = 0; i < left_keys.size(); ++i) {
          keys += (i == 0 ? " %" : ", %") +
                  std::to_string(left_keys[i] + 1) + "=%" +
                  std::to_string(left_arity + right_keys[i] + 1);
        }
        PhysOpPtr op(std::make_unique<HashJoinOp>(
            std::move(left_keys), std::move(right_keys), std::move(residual),
            std::move(l), std::move(r)));
        op->set_annotation(std::move(keys));
        return op;
      }
      PhysOpPtr op(std::make_unique<NestedLoopJoinOp>(
          plan->condition(), std::move(l), std::move(r)));
      op->set_annotation(options.hash_ops ? "fallback: predicate not hashable"
                                          : "fallback: hash ops disabled");
      return op;
    }
    case PlanKind::kGroupBy: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child,
                           LowerPlanImpl(plan->child(0), provider, estimator, options));
      return PhysOpPtr(std::make_unique<HashGroupByOp>(
          plan->group_keys(), plan->aggregates(), plan->schema(),
          std::move(child)));
    }
    case PlanKind::kClosure: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child,
                           LowerPlanImpl(plan->child(0), provider, estimator, options));
      return PhysOpPtr(std::make_unique<ClosureOp>(std::move(child)));
    }
  }
  return Status::Internal("bad plan kind");
}

Result<PhysOpPtr> LowerPlanImpl(const PlanPtr& plan,
                                const RelationProvider& provider,
                                const CardinalityEstimator* estimator,
                                const PlannerOptions& options) {
  MRA_ASSIGN_OR_RETURN(PhysOpPtr op,
                       LowerNode(plan, provider, estimator, options));
  if (estimator != nullptr) op->set_estimated_rows((*estimator)(*plan));
  return op;
}

}  // namespace

Result<PhysOpPtr> LowerPlan(const PlanPtr& plan,
                            const RelationProvider& provider,
                            const CardinalityEstimator* estimator,
                            const PlannerOptions& options) {
  return LowerPlanImpl(plan, provider, estimator, options);
}

Result<Relation> ExecutePlan(const PlanPtr& plan,
                             const RelationProvider& provider) {
  MRA_ASSIGN_OR_RETURN(PhysOpPtr root, LowerPlan(plan, provider));
  return ExecuteToRelation(*root);
}

}  // namespace exec
}  // namespace mra
