#include "mra/exec/physical_planner.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "mra/common/annotation.h"
#include "mra/exec/sort.h"
#include "mra/obs/metrics.h"
#include "mra/parallel/parallel_ops.h"

namespace mra {
namespace exec {

namespace {

/// Subtree kinds worth sharing when duplicated: those that materialise or
/// build hash state (running them twice doubles real work).  Streaming
/// nodes (σ, π, scans) are cheaper to re-run than to materialise.
bool ReusableKind(PlanKind kind) {
  switch (kind) {
    case PlanKind::kJoin:
    case PlanKind::kGroupBy:
    case PlanKind::kClosure:
    case PlanKind::kDifference:
    case PlanKind::kIntersect:
    case PlanKind::kUnique:
      return true;
    default:
      return false;
  }
}

/// Per-LowerPlan state: the options plus the common-subexpression books.
/// `reuse_counts` holds how often each reusable subtree fingerprint occurs
/// in the root plan; `shared` maps fingerprints lowered once already to
/// their shared materialisation state.
struct LowerContext {
  const RelationProvider& provider;
  const CardinalityEstimator* estimator;
  const ExecConfig& config;
  std::unordered_map<std::string, int> reuse_counts;
  std::unordered_map<std::string, std::shared_ptr<SubplanState>> shared;
};

/// Join-strategy choice for an equi-join: sort-merge when the knob forces
/// it, or when the estimated hash build footprint would trip an armed
/// memory budget — the sort-merge inputs spill to disk instead of being
/// killed (docs/OPTIMIZER.md "Join strategy").  With no estimator or no
/// budget the hash join stays the default.
bool PickSortMergeJoin(const PlanPtr& plan, const LowerContext& ctx) {
  if (ctx.config.exec.sort_merge_join) return true;
  uint64_t budget = ctx.config.governance.query_mem_budget_bytes;
  if (budget == 0 || ctx.estimator == nullptr) return false;
  double build_rows = (*ctx.estimator)(*plan->child(1));
  if (build_rows < 0) return false;
  // Same coarse footprint model the executor charges with: struct
  // overhead plus one Value per attribute (string payloads unknown here).
  double row_bytes = static_cast<double>(
      sizeof(Row) + plan->child(1)->schema().arity() * sizeof(Value) +
      3 * sizeof(size_t));  // key index + chain links per build row
  return build_rows * row_bytes > static_cast<double>(budget);
}

/// Lane count for a hash operator's parallel variant: the configured
/// worker degree when parallelism is on and the node's estimated input
/// volume (build + probe sides for a join) reaches the threshold, else 0
/// (stay serial).  With no estimator the planner never guesses parallel.
size_t ParallelLanes(const PlanPtr& plan, const LowerContext& ctx) {
  const ExecConfig::Exec& e = ctx.config.exec;
  if (e.workers <= 1 || !e.hash_ops || ctx.estimator == nullptr) return 0;
  double input = 0;
  for (const PlanPtr& child : plan->children()) {
    input += (*ctx.estimator)(*child);
  }
  if (input < static_cast<double>(e.parallel_threshold)) return 0;
  return e.workers;
}

void CountReusableSubtrees(const PlanPtr& plan,
                           std::unordered_map<std::string, int>* counts) {
  if (ReusableKind(plan->kind())) ++(*counts)[plan->ToInlineString()];
  for (const PlanPtr& child : plan->children()) {
    CountReusableSubtrees(child, counts);
  }
}

Result<PhysOpPtr> LowerPlanImpl(const PlanPtr& plan, LowerContext& ctx);

/// Picks and constructs the physical operator for one logical node.
Result<PhysOpPtr> LowerNode(const PlanPtr& plan, LowerContext& ctx) {
  switch (plan->kind()) {
    case PlanKind::kScan: {
      MRA_ASSIGN_OR_RETURN(const Relation* rel,
                           ctx.provider.GetRelation(plan->relation_name()));
      if (!rel->schema().CompatibleWith(plan->schema())) {
        return Status::Internal("relation " + plan->relation_name() +
                                " changed schema after planning");
      }
      return PhysOpPtr(std::make_unique<ScanOp>(rel));
    }
    case PlanKind::kConstRel:
      return PhysOpPtr(std::make_unique<ConstScanOp>(plan->const_relation()));
    case PlanKind::kSelect: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child, LowerPlanImpl(plan->child(0), ctx));
      return PhysOpPtr(
          std::make_unique<FilterOp>(plan->condition(), std::move(child)));
    }
    case PlanKind::kProject: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child, LowerPlanImpl(plan->child(0), ctx));
      return PhysOpPtr(std::make_unique<ComputeOp>(
          plan->projections(), plan->schema(), std::move(child)));
    }
    case PlanKind::kUnique: {
      size_t lanes = ParallelLanes(plan, ctx);
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child, LowerPlanImpl(plan->child(0), ctx));
      if (!ctx.config.exec.hash_ops) {
        PhysOpPtr op(std::make_unique<SortDedupOp>(std::move(child)));
        op->set_annotation(AnnotationText("fallback", "hash ops disabled"));
        return op;
      }
      if (lanes > 0) {
        PhysOpPtr op(std::make_unique<parallel::ParallelDedupOp>(
            std::move(child), lanes, ctx.config.exec.morsel_size));
        op->set_annotation(
            AnnotationText("parallel", std::to_string(lanes) + " lanes"));
        return op;
      }
      return PhysOpPtr(std::make_unique<DedupOp>(std::move(child)));
    }
    case PlanKind::kUnion: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr l, LowerPlanImpl(plan->child(0), ctx));
      MRA_ASSIGN_OR_RETURN(PhysOpPtr r, LowerPlanImpl(plan->child(1), ctx));
      return PhysOpPtr(
          std::make_unique<UnionAllOp>(std::move(l), std::move(r)));
    }
    case PlanKind::kDifference: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr l, LowerPlanImpl(plan->child(0), ctx));
      MRA_ASSIGN_OR_RETURN(PhysOpPtr r, LowerPlanImpl(plan->child(1), ctx));
      return PhysOpPtr(
          std::make_unique<DifferenceOp>(std::move(l), std::move(r)));
    }
    case PlanKind::kIntersect: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr l, LowerPlanImpl(plan->child(0), ctx));
      MRA_ASSIGN_OR_RETURN(PhysOpPtr r, LowerPlanImpl(plan->child(1), ctx));
      return PhysOpPtr(
          std::make_unique<IntersectOp>(std::move(l), std::move(r)));
    }
    case PlanKind::kProduct: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr l, LowerPlanImpl(plan->child(0), ctx));
      MRA_ASSIGN_OR_RETURN(PhysOpPtr r, LowerPlanImpl(plan->child(1), ctx));
      return PhysOpPtr(std::make_unique<NestedLoopJoinOp>(
          nullptr, std::move(l), std::move(r)));
    }
    case PlanKind::kJoin: {
      size_t lanes = ParallelLanes(plan, ctx);
      MRA_ASSIGN_OR_RETURN(PhysOpPtr l, LowerPlanImpl(plan->child(0), ctx));
      MRA_ASSIGN_OR_RETURN(PhysOpPtr r, LowerPlanImpl(plan->child(1), ctx));
      std::vector<size_t> left_keys, right_keys;
      ExprPtr residual;
      size_t left_arity = plan->child(0)->schema().arity();
      if (ctx.config.exec.hash_ops &&
          ExtractEquiJoinKeys(plan->condition(), plan->schema(), left_arity,
                              &left_keys, &right_keys, &residual)) {
        std::string keys;
        for (size_t i = 0; i < left_keys.size(); ++i) {
          keys += (i == 0 ? "%" : ", %") + std::to_string(left_keys[i] + 1) +
                  "=%" + std::to_string(left_arity + right_keys[i] + 1);
        }
        if (PickSortMergeJoin(plan, ctx)) {
          PhysOpPtr op(std::make_unique<SortMergeJoinOp>(
              std::move(left_keys), std::move(right_keys),
              std::move(residual), std::move(l), std::move(r),
              ctx.config.exec.sort_spill_bytes));
          op->set_annotation(
              AnnotationText("strategy", "sort-merge, keys " + keys));
          return op;
        }
        if (lanes > 0) {
          PhysOpPtr op(std::make_unique<parallel::ParallelHashJoinOp>(
              std::move(left_keys), std::move(right_keys), std::move(residual),
              std::move(l), std::move(r), lanes, ctx.config.exec.morsel_size));
          op->set_annotation(AnnotationText(
              "keys", keys + "; parallel: " + std::to_string(lanes) +
                          " lanes"));
          return op;
        }
        PhysOpPtr op(std::make_unique<HashJoinOp>(
            std::move(left_keys), std::move(right_keys), std::move(residual),
            std::move(l), std::move(r)));
        op->set_annotation(AnnotationText("keys", keys));
        return op;
      }
      PhysOpPtr op(std::make_unique<NestedLoopJoinOp>(
          plan->condition(), std::move(l), std::move(r)));
      op->set_annotation(
          ctx.config.exec.hash_ops
              ? AnnotationText("fallback", "predicate not hashable")
              : AnnotationText("fallback", "hash ops disabled"));
      return op;
    }
    case PlanKind::kGroupBy: {
      size_t lanes = ParallelLanes(plan, ctx);
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child, LowerPlanImpl(plan->child(0), ctx));
      if (lanes > 0) {
        PhysOpPtr op(std::make_unique<parallel::ParallelHashGroupByOp>(
            plan->group_keys(), plan->aggregates(), plan->schema(),
            std::move(child), lanes, ctx.config.exec.morsel_size));
        op->set_annotation(
            AnnotationText("parallel", std::to_string(lanes) + " lanes"));
        return op;
      }
      return PhysOpPtr(std::make_unique<HashGroupByOp>(
          plan->group_keys(), plan->aggregates(), plan->schema(),
          std::move(child)));
    }
    case PlanKind::kClosure: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child, LowerPlanImpl(plan->child(0), ctx));
      return PhysOpPtr(std::make_unique<ClosureOp>(std::move(child)));
    }
    case PlanKind::kSort: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child, LowerPlanImpl(plan->child(0), ctx));
      const std::vector<size_t>& keys = plan->sort_keys();
      const std::vector<bool>& desc = plan->sort_desc();
      std::string detail;
      for (size_t i = 0; i < keys.size(); ++i) {
        if (i > 0) detail += ", ";
        if (desc[i]) detail += '-';
        detail += '%' + std::to_string(keys[i] + 1);
      }
      if (plan->sort_limit() > 0) {
        detail += " limit " + std::to_string(plan->sort_limit());
      }
      PhysOpPtr op(std::make_unique<SortOp>(
          keys, desc, plan->sort_limit(), ctx.config.exec.sort_spill_bytes,
          std::move(child)));
      op->set_annotation(AnnotationText("order", detail));
      return op;
    }
  }
  return Status::Internal("bad plan kind");
}

Result<PhysOpPtr> LowerPlanImpl(const PlanPtr& plan, LowerContext& ctx) {
  // Common-subexpression reuse: a reusable subtree occurring more than once
  // in the root plan is lowered once; every occurrence streams the shared
  // materialisation (bag-preserving — the cached relation IS the subtree's
  // result, scanned k times instead of computed k times).
  std::string fingerprint;
  if (!ctx.reuse_counts.empty() && ReusableKind(plan->kind())) {
    fingerprint = plan->ToInlineString();
    auto count = ctx.reuse_counts.find(fingerprint);
    if (count == ctx.reuse_counts.end() || count->second < 2) {
      fingerprint.clear();
    } else {
      auto shared = ctx.shared.find(fingerprint);
      if (shared != ctx.shared.end()) {
        obs::MetricsRegistry::Global()
            .GetCounter("opt.rule.subplan_reuse")
            ->Inc();
        PhysOpPtr op(std::make_unique<SubplanCacheOp>(shared->second,
                                                      /*owner=*/false));
        op->set_annotation(AnnotationText("rule", "subplan_reuse"));
        if (ctx.estimator != nullptr) {
          op->set_estimated_rows((*ctx.estimator)(*plan));
        }
        return op;
      }
    }
  }
  MRA_ASSIGN_OR_RETURN(PhysOpPtr op, LowerNode(plan, ctx));
  if (ctx.estimator != nullptr) op->set_estimated_rows((*ctx.estimator)(*plan));
  if (!fingerprint.empty()) {
    auto state = std::make_shared<SubplanState>();
    double est = op->estimated_rows();
    state->source = std::move(op);
    PhysOpPtr cache(std::make_unique<SubplanCacheOp>(state, /*owner=*/true));
    cache->set_estimated_rows(est);
    ctx.shared.emplace(std::move(fingerprint), std::move(state));
    return cache;
  }
  return op;
}

}  // namespace

Result<PhysOpPtr> LowerPlan(const PlanPtr& plan,
                            const RelationProvider& provider,
                            const CardinalityEstimator* estimator,
                            const ExecConfig& config, ExecContext* exec_ctx) {
  LowerContext ctx{provider, estimator, config, {}, {}};
  if (config.planner.subplan_reuse) {
    CountReusableSubtrees(plan, &ctx.reuse_counts);
    bool any_repeat = false;
    for (const auto& [fp, n] : ctx.reuse_counts) {
      if (n >= 2) {
        any_repeat = true;
        break;
      }
    }
    // Drop the books when nothing repeats so the per-node fingerprint
    // checks short-circuit.
    if (!any_repeat) ctx.reuse_counts.clear();
  }
  MRA_ASSIGN_OR_RETURN(PhysOpPtr root, LowerPlanImpl(plan, ctx));
  // Thread the governance context through the whole lowered tree so every
  // wrapper's batch-boundary check sees the same cancellation flag,
  // deadline and shared memory budget.
  if (exec_ctx != nullptr) root->SetExecContext(exec_ctx);
  return root;
}

Result<Relation> ExecutePlan(const PlanPtr& plan,
                             const RelationProvider& provider) {
  MRA_ASSIGN_OR_RETURN(PhysOpPtr root, LowerPlan(plan, provider));
  return ExecuteToRelation(*root);
}

}  // namespace exec
}  // namespace mra
