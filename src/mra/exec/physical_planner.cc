#include "mra/exec/physical_planner.h"

namespace mra {
namespace exec {

Result<PhysOpPtr> LowerPlan(const PlanPtr& plan,
                            const RelationProvider& provider) {
  switch (plan->kind()) {
    case PlanKind::kScan: {
      MRA_ASSIGN_OR_RETURN(const Relation* rel,
                           provider.GetRelation(plan->relation_name()));
      if (!rel->schema().CompatibleWith(plan->schema())) {
        return Status::Internal("relation " + plan->relation_name() +
                                " changed schema after planning");
      }
      return PhysOpPtr(std::make_unique<ScanOp>(rel));
    }
    case PlanKind::kConstRel:
      return PhysOpPtr(std::make_unique<ConstScanOp>(plan->const_relation()));
    case PlanKind::kSelect: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child, LowerPlan(plan->child(0), provider));
      return PhysOpPtr(
          std::make_unique<FilterOp>(plan->condition(), std::move(child)));
    }
    case PlanKind::kProject: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child, LowerPlan(plan->child(0), provider));
      return PhysOpPtr(std::make_unique<ComputeOp>(
          plan->projections(), plan->schema(), std::move(child)));
    }
    case PlanKind::kUnique: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child, LowerPlan(plan->child(0), provider));
      return PhysOpPtr(std::make_unique<DedupOp>(std::move(child)));
    }
    case PlanKind::kUnion: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr l, LowerPlan(plan->child(0), provider));
      MRA_ASSIGN_OR_RETURN(PhysOpPtr r, LowerPlan(plan->child(1), provider));
      return PhysOpPtr(
          std::make_unique<UnionAllOp>(std::move(l), std::move(r)));
    }
    case PlanKind::kDifference: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr l, LowerPlan(plan->child(0), provider));
      MRA_ASSIGN_OR_RETURN(PhysOpPtr r, LowerPlan(plan->child(1), provider));
      return PhysOpPtr(
          std::make_unique<DifferenceOp>(std::move(l), std::move(r)));
    }
    case PlanKind::kIntersect: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr l, LowerPlan(plan->child(0), provider));
      MRA_ASSIGN_OR_RETURN(PhysOpPtr r, LowerPlan(plan->child(1), provider));
      return PhysOpPtr(
          std::make_unique<IntersectOp>(std::move(l), std::move(r)));
    }
    case PlanKind::kProduct: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr l, LowerPlan(plan->child(0), provider));
      MRA_ASSIGN_OR_RETURN(PhysOpPtr r, LowerPlan(plan->child(1), provider));
      return PhysOpPtr(std::make_unique<NestedLoopJoinOp>(
          nullptr, std::move(l), std::move(r)));
    }
    case PlanKind::kJoin: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr l, LowerPlan(plan->child(0), provider));
      MRA_ASSIGN_OR_RETURN(PhysOpPtr r, LowerPlan(plan->child(1), provider));
      std::vector<size_t> left_keys, right_keys;
      ExprPtr residual;
      if (ExtractEquiJoinKeys(plan->condition(), plan->schema(),
                              plan->child(0)->schema().arity(), &left_keys,
                              &right_keys, &residual)) {
        return PhysOpPtr(std::make_unique<HashJoinOp>(
            std::move(left_keys), std::move(right_keys), std::move(residual),
            std::move(l), std::move(r)));
      }
      return PhysOpPtr(std::make_unique<NestedLoopJoinOp>(
          plan->condition(), std::move(l), std::move(r)));
    }
    case PlanKind::kGroupBy: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child, LowerPlan(plan->child(0), provider));
      return PhysOpPtr(std::make_unique<HashGroupByOp>(
          plan->group_keys(), plan->aggregates(), plan->schema(),
          std::move(child)));
    }
    case PlanKind::kClosure: {
      MRA_ASSIGN_OR_RETURN(PhysOpPtr child, LowerPlan(plan->child(0), provider));
      return PhysOpPtr(std::make_unique<ClosureOp>(std::move(child)));
    }
  }
  return Status::Internal("bad plan kind");
}

Result<Relation> ExecutePlan(const PlanPtr& plan,
                             const RelationProvider& provider) {
  MRA_ASSIGN_OR_RETURN(PhysOpPtr root, LowerPlan(plan, provider));
  return ExecuteToRelation(*root);
}

}  // namespace exec
}  // namespace mra
