#include "mra/exec/sort.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string_view>
#include <utility>

#include "mra/algebra/ops.h"
#include "mra/common/annotation.h"
#include "mra/expr/eval.h"
#include "mra/fault/failpoint.h"
#include "mra/obs/metrics.h"
#include "mra/storage/serializer.h"

namespace mra {
namespace exec {
namespace {

namespace fs = std::filesystem;

// Injection sites for the spill torture cases (docs/RECOVERY.md catalog):
// one hit per run write, per rename, and per merge-side entry read.
fault::Failpoint* SpillWriteFp() {
  static fault::Failpoint* fp =
      fault::FaultRegistry::Global().Get("sort.spill.write");
  return fp;
}
fault::Failpoint* SpillRenameFp() {
  static fault::Failpoint* fp =
      fault::FaultRegistry::Global().Get("sort.spill.rename");
  return fp;
}
fault::Failpoint* SpillReadFp() {
  static fault::Failpoint* fp =
      fault::FaultRegistry::Global().Get("sort.spill.read");
  return fp;
}

obs::Counter* SpillRunsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("sort.spill_runs");
  return c;
}
obs::Counter* SpillBytesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("sort.spill_bytes");
  return c;
}

// Same coarse footprint model the materialising operators use for budget
// charges (struct footprint + string payloads).
uint64_t ApproxRowBytes(const Row& row) {
  uint64_t bytes = sizeof(Row) + row.tuple.arity() * sizeof(Value);
  for (const Value& v : row.tuple.values()) {
    if (v.kind() == TypeKind::kString) bytes += v.string_value().capacity();
  }
  return bytes;
}

// Fresh run-file path under the system temp directory; the process-wide
// sequence keeps concurrent sorts (and lanes) from colliding.
std::string NextRunPath() {
  static std::atomic<uint64_t> seq{0};
  uint64_t n = seq.fetch_add(1, std::memory_order_relaxed);
  fs::path dir = fs::temp_directory_path();
  return (dir / ("mra_sort_" + std::to_string(::getpid()) + "_run" +
                 std::to_string(n)))
      .string();
}

}  // namespace

// Streams one run file: `length(u32) ++ payload` entries where payload is
// the storage encoding of `tuple ++ count`.  The length prefix makes each
// entry independently decodable, so the merge never buffers a whole run.
struct SortOp::RunReader {
  std::ifstream in;
  std::string path;
  Row current;
  bool done = false;

  Status Advance() {
    MRA_RETURN_IF_ERROR(fault::InjectIfArmed(SpillReadFp()));
    char len_buf[4];
    in.read(len_buf, sizeof(len_buf));
    if (in.gcount() == 0 && in.eof()) {
      done = true;
      return Status::OK();
    }
    if (in.gcount() != sizeof(len_buf)) {
      return Status::Corruption("torn entry header in sort run " + path);
    }
    storage::Decoder len_dec(std::string_view(len_buf, sizeof(len_buf)));
    MRA_ASSIGN_OR_RETURN(uint32_t len, len_dec.GetU32());
    std::string payload(len, '\0');
    in.read(payload.data(), len);
    if (static_cast<uint32_t>(in.gcount()) != len) {
      return Status::Corruption("torn entry payload in sort run " + path);
    }
    storage::Decoder dec(payload);
    MRA_ASSIGN_OR_RETURN(current.tuple, dec.GetTuple());
    MRA_ASSIGN_OR_RETURN(current.count, dec.GetU64());
    return Status::OK();
  }
};

SortOp::SortOp(std::vector<size_t> keys, std::vector<bool> desc,
               uint64_t limit, uint64_t spill_bytes, PhysOpPtr child)
    : keys_(std::move(keys)),
      desc_(std::move(desc)),
      limit_(limit),
      spill_bytes_(spill_bytes),
      child_(std::move(child)) {}

SortOp::~SortOp() { RemoveRunFiles(); }

Status SortOp::OpenImpl() {
  if (!base_annotation_captured_) {
    base_annotation_ = annotation();
    base_annotation_captured_ = true;
  }
  Status opened = OpenInner();
  if (!opened.ok()) AbortOpen();
  return opened;
}

Status SortOp::OpenInner() {
  buffer_.clear();
  buffer_bytes_ = 0;
  buffer_weight_ = 0;
  pos_ = 0;
  emitted_weight_ = 0;
  merging_ = false;
  readers_.clear();
  merge_heap_.clear();
  RemoveRunFiles();
  spilled_runs_ = 0;
  set_annotation(base_annotation_);

  // Spill threshold: the knob's fixed run cap when set, further bounded by
  // half the query budget when one is armed — the sort leaves headroom for
  // the rest of the plan instead of racing the budget to the kill.
  uint64_t threshold = spill_bytes_ > 0 ? spill_bytes_ : UINT64_MAX;
  if (exec_context() != nullptr && exec_context()->mem_budget() > 0) {
    threshold = std::min(threshold, exec_context()->mem_budget() / 2);
  }

  auto by_sort_order = [this](const Row& a, const Row& b) {
    return ops::CompareForSort(a.tuple, b.tuple, keys_, desc_) < 0;
  };

  MRA_RETURN_IF_ERROR(child_->Open());
  RowBatch batch;
  while (true) {
    MRA_RETURN_IF_ERROR(child_->NextBatch(batch));
    if (batch.empty()) break;
    for (Row& row : batch) {
      buffer_bytes_ += ApproxRowBytes(row);
      buffer_weight_ += row.count;
      buffer_.push_back(std::move(row));
      if (limit_ > 0) {
        std::push_heap(buffer_.begin(), buffer_.end(), by_sort_order);
        PruneTopK();
      }
      // Spill the moment the run crosses the threshold — checked per row,
      // not per batch, so a single large batch cannot overshoot an armed
      // budget before the spill gets a chance to shed it.
      if (buffer_bytes_ >= threshold) {
        MRA_RETURN_IF_ERROR(SpillRun());
      }
    }
    // Budget check per input batch: a runaway non-spilling sort input is
    // caught while it grows.
    MRA_RETURN_IF_ERROR(ChargeMemTo(buffer_bytes_));
  }
  child_->Close();

  if (run_files_.empty()) {
    // In-memory fast path: one sort, emission walks the buffer.
    std::sort(buffer_.begin(), buffer_.end(), by_sort_order);
    return Status::OK();
  }

  // Something spilled: push the tail buffer out too and merge purely from
  // files, so emission order never depends on which rows happened to stay
  // resident.
  if (!buffer_.empty()) {
    MRA_RETURN_IF_ERROR(SpillRun());
    MRA_RETURN_IF_ERROR(ChargeMemTo(buffer_bytes_));
  }
  MRA_RETURN_IF_ERROR(StartMerge());
  std::string note =
      AnnotationText("spill", std::to_string(run_files_.size()) + " runs");
  set_annotation(base_annotation_.empty() ? note
                                          : base_annotation_ + ", " + note);
  return Status::OK();
}

void SortOp::AbortOpen() {
  // A failed Open leaves the operator Closed without a CloseImpl call, so
  // reclaim everything here: the wrapper only releases budget charges.
  child_->Close();
  buffer_.clear();
  buffer_bytes_ = 0;
  buffer_weight_ = 0;
  readers_.clear();
  merge_heap_.clear();
  merging_ = false;
  RemoveRunFiles();
}

void SortOp::PruneTopK() {
  // buffer_ is a max-heap under the sort order: the front is the worst
  // entry.  While the rest of the heap already carries `limit_` weight,
  // every remaining row orders at-or-before the front, so the front can
  // never reach the top `limit_` — drop it.
  auto by_sort_order = [this](const Row& a, const Row& b) {
    return ops::CompareForSort(a.tuple, b.tuple, keys_, desc_) < 0;
  };
  while (!buffer_.empty() &&
         buffer_weight_ - buffer_.front().count >= limit_) {
    std::pop_heap(buffer_.begin(), buffer_.end(), by_sort_order);
    buffer_weight_ -= buffer_.back().count;
    buffer_bytes_ -= std::min(buffer_bytes_, ApproxRowBytes(buffer_.back()));
    buffer_.pop_back();
  }
}

Status SortOp::SpillRun() {
  auto by_sort_order = [this](const Row& a, const Row& b) {
    return ops::CompareForSort(a.tuple, b.tuple, keys_, desc_) < 0;
  };
  std::sort(buffer_.begin(), buffer_.end(), by_sort_order);

  std::string final_path = NextRunPath();
  std::string tmp_path = final_path + ".tmp";
  // Record before writing so every abort path sees the file.
  run_files_.push_back(final_path);

  MRA_RETURN_IF_ERROR(fault::InjectIfArmed(SpillWriteFp()));
  uint64_t written = 0;
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot create sort run " + tmp_path);
    }
    for (const Row& row : buffer_) {
      storage::Encoder payload;
      payload.PutTuple(row.tuple);
      payload.PutU64(row.count);
      storage::Encoder header;
      header.PutU32(static_cast<uint32_t>(payload.buffer().size()));
      out.write(header.buffer().data(),
                static_cast<std::streamsize>(header.buffer().size()));
      out.write(payload.buffer().data(),
                static_cast<std::streamsize>(payload.buffer().size()));
      written += header.buffer().size() + payload.buffer().size();
    }
    out.flush();
    if (!out) {
      return Status::IoError("short write to sort run " + tmp_path);
    }
  }
  MRA_RETURN_IF_ERROR(fault::InjectIfArmed(SpillRenameFp()));
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::IoError("cannot publish sort run " + final_path + ": " +
                           ec.message());
  }
  SpillRunsCounter()->Inc();
  SpillBytesCounter()->Inc(written);
  ++spilled_runs_;

  buffer_.clear();
  buffer_bytes_ = 0;
  buffer_weight_ = 0;
  return Status::OK();
}

Status SortOp::StartMerge() {
  readers_.clear();
  merge_heap_.clear();
  for (const std::string& path : run_files_) {
    auto reader = std::make_unique<RunReader>();
    reader->path = path;
    reader->in.open(path, std::ios::binary);
    if (!reader->in) {
      return Status::IoError("cannot reopen sort run " + path);
    }
    MRA_RETURN_IF_ERROR(reader->Advance());
    if (!reader->done) {
      merge_heap_.push_back(readers_.size());
    }
    readers_.push_back(std::move(reader));
  }
  auto heap_after = [this](size_t a, size_t b) {
    // std::*_heap build a max-heap; invert for a min-heap, with the reader
    // index as a deterministic tie-break (ties are identical tuples).
    int c = ops::CompareForSort(readers_[a]->current.tuple,
                                readers_[b]->current.tuple, keys_, desc_);
    if (c != 0) return c > 0;
    return a > b;
  };
  std::make_heap(merge_heap_.begin(), merge_heap_.end(), heap_after);
  merging_ = true;
  return Status::OK();
}

std::optional<Row> SortOp::ClampEmit(Row row) {
  if (limit_ == 0) return std::optional<Row>(std::move(row));
  if (emitted_weight_ >= limit_) return std::nullopt;
  row.count = std::min<uint64_t>(row.count, limit_ - emitted_weight_);
  emitted_weight_ += row.count;
  return std::optional<Row>(std::move(row));
}

Result<std::optional<Row>> SortOp::NextImpl() {
  if (!merging_) {
    if (pos_ >= buffer_.size()) return std::optional<Row>();
    std::optional<Row> out = ClampEmit(std::move(buffer_[pos_]));
    if (!out.has_value()) return std::optional<Row>();
    ++pos_;
    return out;
  }

  auto heap_after = [this](size_t a, size_t b) {
    int c = ops::CompareForSort(readers_[a]->current.tuple,
                                readers_[b]->current.tuple, keys_, desc_);
    if (c != 0) return c > 0;
    return a > b;
  };
  while (!merge_heap_.empty()) {
    std::pop_heap(merge_heap_.begin(), merge_heap_.end(), heap_after);
    size_t idx = merge_heap_.back();
    merge_heap_.pop_back();
    Row row = std::move(readers_[idx]->current);
    MRA_RETURN_IF_ERROR(readers_[idx]->Advance());
    if (!readers_[idx]->done) {
      merge_heap_.push_back(idx);
      std::push_heap(merge_heap_.begin(), merge_heap_.end(), heap_after);
    }
    std::optional<Row> out = ClampEmit(std::move(row));
    if (!out.has_value()) return std::optional<Row>();  // LIMIT exhausted.
    return Result<std::optional<Row>>(std::move(out));
  }
  return std::optional<Row>();
}

void SortOp::CloseImpl() {
  child_->Close();
  buffer_.clear();
  buffer_bytes_ = 0;
  buffer_weight_ = 0;
  pos_ = 0;
  readers_.clear();
  merge_heap_.clear();
  merging_ = false;
  RemoveRunFiles();
}

void SortOp::RemoveRunFiles() {
  for (const std::string& path : run_files_) {
    std::error_code ec;
    fs::remove(path, ec);
    fs::remove(path + ".tmp", ec);
  }
  run_files_.clear();
}

// --- SortMergeJoinOp. ---

SortMergeJoinOp::SortMergeJoinOp(std::vector<size_t> left_keys,
                                 std::vector<size_t> right_keys,
                                 ExprPtr residual_or_null, PhysOpPtr left,
                                 PhysOpPtr right, uint64_t spill_bytes)
    : left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual_or_null)) {
  left_sort_ = std::make_unique<SortOp>(
      left_keys_, std::vector<bool>(left_keys_.size(), false), 0, spill_bytes,
      std::move(left));
  right_sort_ = std::make_unique<SortOp>(
      right_keys_, std::vector<bool>(right_keys_.size(), false), 0,
      spill_bytes, std::move(right));
  schema_ = left_sort_->schema().Concat(right_sort_->schema());
}

int SortMergeJoinOp::CompareKeys(const Tuple& left,
                                 const Tuple& right) const {
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    int c = left.at(left_keys_[i]).Compare(right.at(right_keys_[i]));
    if (c != 0) return c;
  }
  return 0;
}

Status SortMergeJoinOp::OpenImpl() {
  left_group_.clear();
  right_group_.clear();
  li_ = rj_ = 0;
  MRA_RETURN_IF_ERROR(left_sort_->Open());
  Status right_open = right_sort_->Open();
  if (!right_open.ok()) {
    left_sort_->Close();
    return right_open;
  }
  MRA_ASSIGN_OR_RETURN(left_ahead_, left_sort_->Next());
  MRA_ASSIGN_OR_RETURN(right_ahead_, right_sort_->Next());
  return Status::OK();
}

Status SortMergeJoinOp::FillGroup(PhysicalOperator& side,
                                  const std::vector<size_t>& keys,
                                  std::optional<Row>& ahead,
                                  std::vector<Row>& group) {
  group.clear();
  group.push_back(std::move(*ahead));
  while (true) {
    MRA_ASSIGN_OR_RETURN(ahead, side.Next());
    if (!ahead.has_value()) return Status::OK();
    for (size_t k : keys) {
      if (group.front().tuple.at(k).Compare(ahead->tuple.at(k)) != 0) {
        return Status::OK();
      }
    }
    group.push_back(std::move(*ahead));
  }
}

Result<std::optional<Row>> SortMergeJoinOp::NextImpl() {
  while (true) {
    // Drain the cross product of the current equal-key group pair.
    while (li_ < left_group_.size()) {
      if (rj_ >= right_group_.size()) {
        rj_ = 0;
        ++li_;
        continue;
      }
      const Row& lhs = left_group_[li_];
      const Row& rhs = right_group_[rj_++];
      Tuple combined = lhs.tuple.Concat(rhs.tuple);
      if (residual_ != nullptr) {
        MRA_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*residual_, combined));
        if (!keep) continue;
      }
      return std::optional<Row>(Row{std::move(combined),
                                    lhs.count * rhs.count});
    }
    left_group_.clear();
    right_group_.clear();
    li_ = rj_ = 0;

    // Align the two sorted streams on the next shared key.
    while (left_ahead_.has_value() && right_ahead_.has_value()) {
      int c = CompareKeys(left_ahead_->tuple, right_ahead_->tuple);
      if (c == 0) break;
      if (c < 0) {
        MRA_ASSIGN_OR_RETURN(left_ahead_, left_sort_->Next());
      } else {
        MRA_ASSIGN_OR_RETURN(right_ahead_, right_sort_->Next());
      }
    }
    if (!left_ahead_.has_value() || !right_ahead_.has_value()) {
      return std::optional<Row>();
    }
    MRA_RETURN_IF_ERROR(
        FillGroup(*left_sort_, left_keys_, left_ahead_, left_group_));
    MRA_RETURN_IF_ERROR(
        FillGroup(*right_sort_, right_keys_, right_ahead_, right_group_));

    // Both sides of one key group are resident for the cross product —
    // charge them like any other materialising state.
    uint64_t group_bytes = 0;
    for (const Row& r : left_group_) group_bytes += ApproxRowBytes(r);
    for (const Row& r : right_group_) group_bytes += ApproxRowBytes(r);
    MRA_RETURN_IF_ERROR(ChargeMemTo(group_bytes));
  }
}

void SortMergeJoinOp::CloseImpl() {
  left_sort_->Close();
  right_sort_->Close();
  left_group_.clear();
  right_group_.clear();
  left_ahead_.reset();
  right_ahead_.reset();
  li_ = rj_ = 0;
}

}  // namespace exec
}  // namespace mra
