#include "mra/exec/exec_context.h"

#include "mra/obs/metrics.h"

namespace mra {
namespace exec {

namespace {

obs::Counter* CancelledTotal() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("exec.cancelled_total");
  return c;
}

obs::Counter* DeadlineExceededTotal() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "exec.deadline_exceeded_total");
  return c;
}

obs::Counter* MemRejectedTotal() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("exec.mem_rejected_total");
  return c;
}

}  // namespace

std::string_view KillReasonName(KillReason reason) {
  switch (reason) {
    case KillReason::kNone:
      return "none";
    case KillReason::kCancelled:
      return "cancelled";
    case KillReason::kDeadline:
      return "deadline";
    case KillReason::kMemory:
      return "mem_budget";
  }
  return "unknown";
}

void ExecContext::SetDeadlineAfterMs(int64_t timeout_ms) {
  if (timeout_ms <= 0) return;
  timeout_ms_ = timeout_ms;
  deadline_ =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  has_deadline_ = true;
  armed_ = true;
}

void ExecContext::SetCancelToken(std::shared_ptr<std::atomic<bool>> token) {
  cancel_token_ = std::move(token);
  if (cancel_token_ != nullptr) armed_ = true;
}

void ExecContext::Trip(KillReason reason) {
  uint8_t expected = static_cast<uint8_t>(KillReason::kNone);
  if (!killed_.compare_exchange_strong(expected,
                                       static_cast<uint8_t>(reason),
                                       std::memory_order_acq_rel)) {
    return;  // A reason already landed; first one wins.
  }
  switch (reason) {
    case KillReason::kCancelled:
      CancelledTotal()->Inc();
      break;
    case KillReason::kDeadline:
      DeadlineExceededTotal()->Inc();
      break;
    case KillReason::kMemory:
      MemRejectedTotal()->Inc();
      break;
    case KillReason::kNone:
      break;
  }
}

Status ExecContext::CheckArmed() {
  if (cancel_token_ != nullptr &&
      cancel_token_->load(std::memory_order_acquire)) {
    Trip(KillReason::kCancelled);
    return KillStatus();
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    Trip(KillReason::kDeadline);
    return KillStatus();
  }
  return Status::OK();
}

Status ExecContext::KillStatus() const {
  switch (kill_reason()) {
    case KillReason::kNone:
      return Status::OK();
    case KillReason::kCancelled:
      return Status::Cancelled("query " + std::to_string(query_id_) +
                               " cancelled on request");
    case KillReason::kDeadline:
      return Status::DeadlineExceeded(
          "query " + std::to_string(query_id_) +
          " exceeded the statement timeout of " +
          std::to_string(timeout_ms_) + "ms mid-plan");
    case KillReason::kMemory:
      return Status::ResourceExhausted(
          "query " + std::to_string(query_id_) +
          " exceeded its memory budget in " +
          (mem_culprit_.empty() ? std::string("<unknown>") : mem_culprit_) +
          ": high-water " + std::to_string(mem_high_water_) + " bytes, budget " +
          std::to_string(mem_budget_) + " bytes");
  }
  return Status::Internal("unreachable kill reason");
}

Status ExecContext::Charge(uint64_t bytes, std::string_view op_name) {
  std::lock_guard<std::mutex> lock(mem_mutex_);
  mem_used_ += bytes;
  if (mem_used_ > mem_high_water_) mem_high_water_ = mem_used_;
  if (mem_budget_ != 0 && mem_used_ > mem_budget_ && !killed()) {
    mem_culprit_ = std::string(op_name);
    Trip(KillReason::kMemory);
    return KillStatus();
  }
  return Status::OK();
}

void ExecContext::Release(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mem_mutex_);
  mem_used_ = bytes <= mem_used_ ? mem_used_ - bytes : 0;
}

uint64_t ExecContext::mem_used() const {
  std::lock_guard<std::mutex> lock(mem_mutex_);
  return mem_used_;
}

uint64_t ExecContext::mem_high_water() const {
  std::lock_guard<std::mutex> lock(mem_mutex_);
  return mem_high_water_;
}

}  // namespace exec
}  // namespace mra
