// Per-query governance context: cooperative cancellation, an absolute
// in-plan deadline, and a shared memory budget, threaded by the planner
// into every PhysicalOperator and checked at batch boundaries.
//
// Cost contract (pinned by bench/e19_governance_overhead): a query with no
// deadline, no budget and no cancel token pays one relaxed atomic load per
// Check(); arming a deadline adds one steady_clock read per batch, which
// also bounds how late a kill can land — within one batch boundary.
//
// Thread model: the query's control flow runs on one thread, but a
// parallel operator fans work out to WorkerPool lanes (docs/PARALLELISM.md)
// — so Check() and Charge/Release are safe from any lane.  Check() stays a
// relaxed atomic load on the fast path (the armed slow path only reads
// setup-time state); Charge/Release serialize on an internal mutex, which
// is cheap because charges land per batch, never per row.  RequestCancel()
// may be called from any thread (a server Cancel frame, `\cancel <id>`) or
// from a signal handler (REPL Ctrl-C stores into the external cancel token
// — both paths are a single atomic store, async-signal-safe).
//
// Status taxonomy (docs/GOVERNANCE.md): kCancelled for explicit requests,
// kDeadlineExceeded for statement-timeout expiry, kResourceExhausted for
// budget trips — three distinct codes so clients can retry deadline kills
// (with the Busy-style hint) but not cancellations.

#ifndef MRA_EXEC_EXEC_CONTEXT_H_
#define MRA_EXEC_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "mra/common/status.h"

namespace mra {
namespace exec {

/// Why a governed query was killed.  Values are stored in the atomic kill
/// flag, so kNone must be zero.
enum class KillReason : uint8_t {
  kNone = 0,
  kCancelled = 1,  // Cancel frame / \cancel / Ctrl-C.
  kDeadline = 2,   // Statement timeout expired mid-plan.
  kMemory = 3,     // Per-query memory budget exceeded.
};

/// Stable name for slow-log / metrics tagging, e.g. "deadline".
std::string_view KillReasonName(KillReason reason);

class ExecContext {
 public:
  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  // --- Setup (query thread, before execution starts). ---

  void set_query_id(uint64_t id) { query_id_ = id; }
  uint64_t query_id() const { return query_id_; }

  /// Arms the statement timeout: the plan is killed at the first batch
  /// boundary after `timeout_ms` from now.  0 disables (the default).
  void SetDeadlineAfterMs(int64_t timeout_ms);

  /// Arms the per-query memory budget in bytes.  0 = unlimited.
  void SetMemoryBudget(uint64_t bytes) { mem_budget_ = bytes; }

  /// Attaches an external cancel token (e.g. the REPL's SIGINT flag).
  /// Check() treats a true token like RequestCancel().
  void SetCancelToken(std::shared_ptr<std::atomic<bool>> token);

  // --- Cancellation (any thread; atomic store only). ---

  /// Requests cooperative cancellation; the query observes it at its next
  /// batch boundary.  First reason to land wins; later requests no-op.
  void RequestCancel() { Trip(KillReason::kCancelled); }

  bool killed() const {
    return killed_.load(std::memory_order_relaxed) !=
           static_cast<uint8_t>(KillReason::kNone);
  }
  KillReason kill_reason() const {
    return static_cast<KillReason>(killed_.load(std::memory_order_acquire));
  }

  // --- Cooperative check (query thread, batch boundaries). ---

  /// OK while the query may proceed; otherwise the distinct governed
  /// status (kCancelled / kDeadlineExceeded / kResourceExhausted).
  /// Ungoverned fast path: one relaxed atomic load.
  Status Check() {
    if (killed_.load(std::memory_order_relaxed) !=
        static_cast<uint8_t>(KillReason::kNone)) {
      return KillStatus();
    }
    if (armed_) return CheckArmed();
    return Status::OK();
  }

  /// The status a killed query unwinds with; OK if not killed.
  Status KillStatus() const;

  // --- Memory accounting (any thread; serialized internally). ---

  /// Charges `bytes` against the budget on behalf of `op_name`.  On a trip
  /// the charge is still recorded (Release stays balanced), the context is
  /// killed with kMemory, and the returned status names the operator and
  /// the high-water mark.
  Status Charge(uint64_t bytes, std::string_view op_name);
  void Release(uint64_t bytes);

  uint64_t mem_used() const;
  uint64_t mem_high_water() const;
  uint64_t mem_budget() const { return mem_budget_; }
  int64_t timeout_ms() const { return timeout_ms_; }

 private:
  /// Slow path: consults the external token and the deadline.
  Status CheckArmed();

  /// First-reason-wins kill; bumps the matching exec.*_total counter.
  void Trip(KillReason reason);

  std::atomic<uint8_t> killed_{0};

  // Written during setup on the query thread, read-only afterwards.
  bool armed_ = false;  // deadline or cancel token present
  uint64_t query_id_ = 0;
  int64_t timeout_ms_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::shared_ptr<std::atomic<bool>> cancel_token_;

  // Accounting, guarded by mem_mutex_ (mem_culprit_ is written once under
  // the mutex before the kMemory trip's release store, read only after the
  // matching acquire — so KillStatus() may read it lock-free).
  mutable std::mutex mem_mutex_;
  uint64_t mem_used_ = 0;
  uint64_t mem_high_water_ = 0;
  uint64_t mem_budget_ = 0;
  std::string mem_culprit_;  // Operator that tripped the budget.
};

}  // namespace exec
}  // namespace mra

#endif  // MRA_EXEC_EXEC_CONTEXT_H_
