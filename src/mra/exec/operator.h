// Physical operators: a volcano-style (Open/Next/Close) executor whose rows
// are (tuple, multiplicity) pairs.  Streaming multiplicities instead of
// repeated tuples is the practical payoff of the paper's multi-set
// semantics: a tuple occurring a thousand times costs one row.
//
// A *bag stream* may emit the same tuple in several rows; the multi-set it
// denotes is the per-tuple sum of the emitted counts.  Operators that need
// exact per-tuple totals (difference, intersection, group-by) materialise
// internally.
//
// The public Open/Next/Close entry points are non-virtual wrappers around
// the per-operator OpenImpl/NextImpl/CloseImpl hooks.  The wrappers own the
// operator lifecycle contract — Open before Next, Close idempotent, Close
// without Open a no-op — and collect per-operator execution metrics
// (obs::OperatorMetrics): emitted rows and multiplicity-weighted counts
// always, wall time when obs::ExecTimingEnabled() (EXPLAIN ANALYZE flips
// it around a run).
//
// Batch-at-a-time execution: NextBatch(RowBatch&) is the same wrapper
// pattern over NextBatchImpl, which by default loops NextImpl so every
// operator speaks both protocols.  Hot pipeline operators (scan, filter,
// projection, union) override NextBatchImpl natively: one virtual call and
// one metrics update amortize over up to a whole batch of rows, and
// filter/projection compile their expressions once per Open instead of
// tree-walking per row.  A drained batch (out.empty() after a successful
// call) is end of stream.  The two protocols share cursor state — consume
// an open operator through one of them, not both interleaved.

#ifndef MRA_EXEC_OPERATOR_H_
#define MRA_EXEC_OPERATOR_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mra/algebra/aggregate.h"
#include "mra/core/relation.h"
#include "mra/exec/exec_context.h"
#include "mra/exec/hash_table.h"
#include "mra/expr/eval.h"
#include "mra/expr/scalar_expr.h"
#include "mra/obs/op_metrics.h"

namespace mra {
namespace exec {

/// One unit of a bag stream.
struct Row {
  Tuple tuple;
  uint64_t count = 0;
};

/// Default NextBatch capacity: large enough to amortize per-batch costs,
/// small enough that a batch of (tuple, count) rows stays cache-resident.
inline constexpr size_t kDefaultBatchSize = 1024;

/// A reusable buffer of bag-stream rows.  The capacity is a fill target
/// for producers (NextBatchImpl stops adding at capacity), not a hard
/// allocation bound.
///
/// Row storage is recycled: Clear() resets the logical size without
/// destroying the Row objects, so the tuples parked past size() keep
/// their heap buffers.  Producers that refill through AppendSlot() and
/// *assign* into the slot's tuple (ScanOp copy-assigns, ComputeOp swaps
/// a scratch tuple in) reuse those buffers — a drain loop allocates for
/// the first batch and then runs allocation-free, which is where most of
/// the batch protocol's throughput comes from.  Consumers that move
/// tuples out (materialisation) merely forfeit that reuse for the slots
/// they stole from.
class RowBatch {
 public:
  explicit RowBatch(size_t capacity = kDefaultBatchSize)
      : capacity_(capacity == 0 ? kDefaultBatchSize : capacity) {
    rows_.reserve(capacity_);
  }

  size_t capacity() const { return capacity_; }
  void SetCapacity(size_t capacity) {
    capacity_ = capacity == 0 ? kDefaultBatchSize : capacity;
    rows_.reserve(capacity_);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= capacity_; }

  /// Logical reset; parked rows keep their tuple storage for reuse.
  void Clear() { size_ = 0; }

  void Add(Row row) { AppendSlot() = std::move(row); }

  /// Exposes the next slot (recycled when available) for in-place fill.
  Row& AppendSlot() {
    if (size_ == rows_.size()) rows_.emplace_back();
    return rows_[size_++];
  }

  /// Shrinks the logical size to `n` rows (compaction); the dropped rows
  /// stay parked with their storage.
  void Truncate(size_t n) {
    MRA_CHECK_LE(n, size_);
    size_ = n;
  }

  Row& operator[](size_t i) { return rows_[i]; }
  const Row& operator[](size_t i) const { return rows_[i]; }

  std::vector<Row>::iterator begin() { return rows_.begin(); }
  std::vector<Row>::iterator end() { return rows_.begin() + size_; }
  std::vector<Row>::const_iterator begin() const { return rows_.begin(); }
  std::vector<Row>::const_iterator end() const {
    return rows_.begin() + size_;
  }

 private:
  std::vector<Row> rows_;
  size_t size_ = 0;
  size_t capacity_;
};

/// Abstract physical operator.
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  /// Prepares the operator (builds hash tables, opens children).  Must be
  /// called before Next(); reopening a Closed operator restarts it (and
  /// resets its metrics), reopening an Open one is a programming error.
  Status Open();

  /// Produces the next row, or nullopt at end of stream.
  Result<std::optional<Row>> Next();

  /// Produces the next batch of rows: clears `out`, then fills it with up
  /// to out.capacity() rows.  An empty `out` after a successful call is
  /// end of stream.  Metrics update once per batch, not per row.
  Status NextBatch(RowBatch& out);

  /// Releases resources.  Idempotent by contract — enforced here: a second
  /// Close, or a Close without Open, is a safe no-op.
  void Close();

  virtual const RelationSchema& schema() const = 0;

  /// Operator name for EXPLAIN-style output, e.g. "HashJoin".
  virtual std::string_view name() const = 0;

  /// Children, for plan rendering.
  virtual std::vector<const PhysicalOperator*> children() const { return {}; }

  /// Runtime metrics collected by the wrappers (valid after execution;
  /// hash/distinct figures are recorded by CloseImpl before freeing).
  const obs::OperatorMetrics& metrics() const { return metrics_; }

  /// Planner's cardinality estimate (multiplicity-weighted), < 0 when the
  /// plan was lowered without an estimator.
  double estimated_rows() const { return estimated_rows_; }
  void set_estimated_rows(double rows) { estimated_rows_ = rows; }

  /// Free-form planner note rendered next to the operator name in EXPLAIN
  /// output ("keys: %2=%4", "fallback: predicate not hashable", …) — how
  /// the lowering choice between hash and legacy operators stays visible.
  const std::string& annotation() const { return annotation_; }
  void set_annotation(std::string note) { annotation_ = std::move(note); }

  /// Multi-line indented rendering of the physical plan.
  std::string ToString() const;

  /// Attaches the per-query governance context to this operator and,
  /// recursively, its whole subtree (children() is the traversal; the
  /// const_cast is safe — we only ever hand out children we own).  The
  /// planner calls this on the lowered root; a null context (the default)
  /// runs the plan ungoverned.  The context must outlive execution.
  void SetExecContext(ExecContext* ctx) {
    exec_ctx_ = ctx;
    for (const PhysicalOperator* child : children()) {
      const_cast<PhysicalOperator*>(child)->SetExecContext(ctx);
    }
  }
  ExecContext* exec_context() const { return exec_ctx_; }

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<std::optional<Row>> NextImpl() = 0;
  virtual void CloseImpl() = 0;

  /// Fills `out` (already cleared) with up to out.capacity() rows; leave
  /// it empty at end of stream.  The default adapter loops NextImpl, so
  /// row-at-a-time operators work batched unchanged; hot operators
  /// override it to amortize work across the whole batch.
  virtual Status NextBatchImpl(RowBatch& out);

  /// Memory accounting against the per-query budget.  ChargeMemTo makes
  /// this operator's cumulative charge equal `total_bytes` (charging or
  /// releasing the delta), so impls can re-report an ApproxBytes figure
  /// after every growth step without double counting.  No-op when the
  /// plan runs ungoverned.  The wrapper Close() releases any outstanding
  /// charge, so a killed query's unwind always returns its budget.
  Status ChargeMemTo(uint64_t total_bytes) {
    if (exec_ctx_ == nullptr) return Status::OK();
    if (total_bytes > charged_bytes_) {
      uint64_t delta = total_bytes - charged_bytes_;
      charged_bytes_ = total_bytes;
      return exec_ctx_->Charge(delta, name());
    }
    if (total_bytes < charged_bytes_) {
      exec_ctx_->Release(charged_bytes_ - total_bytes);
      charged_bytes_ = total_bytes;
    }
    return Status::OK();
  }

  /// Re-reports a hash build's current footprint: publishes
  /// OperatorMetrics::hash_bytes and the process-wide hash.peak_bytes
  /// high-water immediately — on growth during execution, not only at
  /// Close — so a live `\top` / ServerStats view sees a running build.
  /// Also charges the footprint against the query budget (ChargeMemTo).
  Status NoteHashFootprint(uint64_t bytes);

  obs::OperatorMetrics metrics_;

 private:
  enum class State : uint8_t { kCreated, kOpen, kClosed };

  State state_ = State::kCreated;
  ExecContext* exec_ctx_ = nullptr;
  uint64_t charged_bytes_ = 0;
  bool timing_ = false;
  double estimated_rows_ = -1.0;
  std::string annotation_;
};

using PhysOpPtr = std::unique_ptr<PhysicalOperator>;

/// Drains `op` (Open/NextBatch*/Close) into a materialised relation,
/// pulling `batch_size` rows per call; batch_size 0 selects the legacy
/// row-at-a-time Next() loop (kept for differential testing and the
/// tuple-vs-batch benchmarks).
Result<Relation> ExecuteToRelation(PhysicalOperator& op,
                                   size_t batch_size = kDefaultBatchSize);

/// Renders the operator tree annotated per node with estimated vs. actual
/// cardinalities, estimation error, wall time and hash-table peaks — the
/// EXPLAIN ANALYZE body.  Call after execution.
std::string RenderPlanWithMetrics(const PhysicalOperator& root);

// --- Leaf operators. ---

/// Scans a borrowed relation (the caller guarantees it outlives execution).
class ScanOp final : public PhysicalOperator {
 public:
  explicit ScanOp(const Relation* relation);

  const RelationSchema& schema() const override;
  std::string_view name() const override { return "Scan"; }

 protected:
  Status OpenImpl() override;
  Result<std::optional<Row>> NextImpl() override;
  Status NextBatchImpl(RowBatch& out) override;
  void CloseImpl() override;

 private:
  const Relation* relation_;
  Relation::const_iterator it_;
};

/// Scans an owned relation (inline literals, pre-materialised inputs).
class ConstScanOp final : public PhysicalOperator {
 public:
  explicit ConstScanOp(Relation relation);

  const RelationSchema& schema() const override;
  std::string_view name() const override { return "ConstScan"; }

 protected:
  Status OpenImpl() override;
  Result<std::optional<Row>> NextImpl() override;
  Status NextBatchImpl(RowBatch& out) override;
  void CloseImpl() override;

 private:
  Relation relation_;
  Relation::const_iterator it_;
};

// --- Streaming unary operators. ---

/// σ_φ — drops rows whose tuples fail the condition.
class FilterOp final : public PhysicalOperator {
 public:
  FilterOp(ExprPtr condition, PhysOpPtr child);

  const RelationSchema& schema() const override { return child_->schema(); }
  std::string_view name() const override { return "Filter"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {child_.get()};
  }

 protected:
  Status OpenImpl() override;
  Result<std::optional<Row>> NextImpl() override;
  Status NextBatchImpl(RowBatch& out) override;
  void CloseImpl() override;

 private:
  ExprPtr condition_;
  PhysOpPtr child_;
  /// Compiled once per Open when the condition fits the fast path.
  std::optional<CompiledPredicate> compiled_;
};

/// π_α — extended projection; multiplicities pass through unchanged.
class ComputeOp final : public PhysicalOperator {
 public:
  ComputeOp(std::vector<ExprPtr> exprs, RelationSchema output_schema,
            PhysOpPtr child);

  const RelationSchema& schema() const override { return schema_; }
  std::string_view name() const override { return "Compute"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {child_.get()};
  }

 protected:
  Status OpenImpl() override;
  Result<std::optional<Row>> NextImpl() override;
  Status NextBatchImpl(RowBatch& out) override;
  void CloseImpl() override;

 private:
  std::vector<ExprPtr> exprs_;
  RelationSchema schema_;
  PhysOpPtr child_;
  /// Attribute indexes when every expression is a plain %i reference
  /// (resolved once per Open): projection becomes a storage-recycling
  /// in-place rewrite through `scratch_`.
  std::optional<std::vector<size_t>> attr_only_;
  Tuple scratch_;
};

/// δ — streaming hash duplicate elimination: first occurrence passes with
/// multiplicity 1, later occurrences are dropped.  The seen-set is a
/// recycled HashKeyIndex; the native batch kernel compacts survivors in
/// place (FilterOp-style), so a drain stays allocation-free once warm.
class DedupOp final : public PhysicalOperator {
 public:
  explicit DedupOp(PhysOpPtr child);

  const RelationSchema& schema() const override { return child_->schema(); }
  std::string_view name() const override { return "Dedup"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {child_.get()};
  }

 protected:
  Status OpenImpl() override;
  Result<std::optional<Row>> NextImpl() override;
  Status NextBatchImpl(RowBatch& out) override;
  void CloseImpl() override;

 private:
  PhysOpPtr child_;
  HashKeyIndex seen_;
  std::vector<size_t> identity_;  // 0, 1, …, arity-1: δ keys on all attrs.
};

/// δ via materialise + sort + adjacent-unique: the hash-free fallback
/// (selected when hash operators are disabled) and the legacy comparator
/// for bench/e16_hash_ops.
class SortDedupOp final : public PhysicalOperator {
 public:
  explicit SortDedupOp(PhysOpPtr child);

  const RelationSchema& schema() const override { return child_->schema(); }
  std::string_view name() const override { return "SortDedup"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {child_.get()};
  }

 protected:
  Status OpenImpl() override;
  Result<std::optional<Row>> NextImpl() override;
  void CloseImpl() override;

 private:
  PhysOpPtr child_;
  std::vector<Tuple> tuples_;  // Sorted, uniqued on Open.
  size_t pos_ = 0;
};

// --- Binary operators. ---

/// ⊎ — concatenates the child streams; per-tuple counts add up by the bag
/// stream convention, so no materialisation is needed.
class UnionAllOp final : public PhysicalOperator {
 public:
  UnionAllOp(PhysOpPtr left, PhysOpPtr right);

  const RelationSchema& schema() const override { return left_->schema(); }
  std::string_view name() const override { return "UnionAll"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  Status OpenImpl() override;
  Result<std::optional<Row>> NextImpl() override;
  Status NextBatchImpl(RowBatch& out) override;
  void CloseImpl() override;

 private:
  PhysOpPtr left_;
  PhysOpPtr right_;
  bool on_right_ = false;
};

/// − with max(0, ·) multiplicities.  Materialises both inputs on Open.
class DifferenceOp final : public PhysicalOperator {
 public:
  DifferenceOp(PhysOpPtr left, PhysOpPtr right);

  const RelationSchema& schema() const override { return left_->schema(); }
  std::string_view name() const override { return "Difference"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  Status OpenImpl() override;
  Result<std::optional<Row>> NextImpl() override;
  void CloseImpl() override;

 private:
  PhysOpPtr left_;
  PhysOpPtr right_;
  Relation result_;
  Relation::const_iterator it_;
};

/// ∩ with min(·,·) multiplicities.  Materialises both inputs on Open.
class IntersectOp final : public PhysicalOperator {
 public:
  IntersectOp(PhysOpPtr left, PhysOpPtr right);

  const RelationSchema& schema() const override { return left_->schema(); }
  std::string_view name() const override { return "Intersect"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  Status OpenImpl() override;
  Result<std::optional<Row>> NextImpl() override;
  void CloseImpl() override;

 private:
  PhysOpPtr left_;
  PhysOpPtr right_;
  Relation result_;
  Relation::const_iterator it_;
};

/// × and ⋈_φ without equi-keys: materialises the right input, then streams
/// the left, pairing each left row with every right row; output
/// multiplicity is the product of the input multiplicities
/// (Definition 3.1).  A null condition means plain product.
class NestedLoopJoinOp final : public PhysicalOperator {
 public:
  NestedLoopJoinOp(ExprPtr condition_or_null, PhysOpPtr left, PhysOpPtr right);

  const RelationSchema& schema() const override { return schema_; }
  std::string_view name() const override {
    return condition_ ? "NestedLoopJoin" : "Product";
  }
  std::vector<const PhysicalOperator*> children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  Status OpenImpl() override;
  Result<std::optional<Row>> NextImpl() override;
  void CloseImpl() override;

 private:
  ExprPtr condition_;
  RelationSchema schema_;
  PhysOpPtr left_;
  PhysOpPtr right_;
  std::vector<Row> right_rows_;
  std::optional<Row> current_left_;
  size_t right_pos_ = 0;
};

/// ⋈ on equi-key conjuncts %i = %j: builds a hash table over the right
/// input keyed by its key attributes, probes with left rows, and applies
/// the residual condition (non-equi conjuncts) to survivors.  Output
/// multiplicity is the product of the matched input multiplicities
/// (Definition 3.1 via Theorem 3.1's σ_φ(E1 × E2) equivalence).
///
/// The build side lives in a recycled arena: a HashKeyIndex over the key
/// projection plus per-key chains through flat row storage.  The native
/// batch kernel pulls whole probe batches, hashes each probe row's key
/// attributes in place (no key tuple materialised) and concatenates match
/// rows into recycled output slots.
class HashJoinOp final : public PhysicalOperator {
 public:
  /// `left_keys[i]` pairs with `right_keys[i]` (indexes are local to each
  /// side).  `residual_or_null` is evaluated over the concatenated tuple.
  HashJoinOp(std::vector<size_t> left_keys, std::vector<size_t> right_keys,
             ExprPtr residual_or_null, PhysOpPtr left, PhysOpPtr right);

  const RelationSchema& schema() const override { return schema_; }
  std::string_view name() const override { return "HashJoin"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  Status OpenImpl() override;
  Result<std::optional<Row>> NextImpl() override;
  Status NextBatchImpl(RowBatch& out) override;
  void CloseImpl() override;

 private:
  static constexpr size_t kNone = static_cast<size_t>(-1);

  /// Appends probe ⊕ build_rows_[match] to `out` (recycled slot), applying
  /// the residual; on residual rejection the slot is truncated back off.
  Result<bool> EmitMatch(const Row& probe, size_t match, RowBatch& out);

  std::vector<size_t> left_keys_;
  std::vector<size_t> right_keys_;
  ExprPtr residual_;
  RelationSchema schema_;
  PhysOpPtr left_;
  PhysOpPtr right_;

  // Build arena, all recycled across Opens: key index, per-key chain heads
  // (id-indexed), flat build rows with next-links.
  HashKeyIndex index_;
  std::vector<size_t> heads_;
  std::vector<Row> build_rows_;  // Parked past build_size_.
  std::vector<size_t> next_;
  size_t build_size_ = 0;

  // Probe cursor, shared by both protocols: the current probe row and its
  // position in the match chain (kNone = fetch the next probe row).
  RowBatch probe_batch_;
  size_t probe_pos_ = 0;
  std::optional<Row> current_left_;  // Row-protocol probe row.
  size_t chain_ = kNone;
};

/// Transitive closure (§5 extension): materialises the child on Open and
/// runs the semi-naive fixpoint; streams the reachability set.
class ClosureOp final : public PhysicalOperator {
 public:
  explicit ClosureOp(PhysOpPtr child);

  const RelationSchema& schema() const override { return child_->schema(); }
  std::string_view name() const override { return "Closure"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {child_.get()};
  }

 protected:
  Status OpenImpl() override;
  Result<std::optional<Row>> NextImpl() override;
  void CloseImpl() override;

 private:
  PhysOpPtr child_;
  Relation result_;
  Relation::const_iterator it_;
};

/// Shared materialisation backing SubplanCacheOp: one state object per
/// reused logical subtree, held by every consumer.  The first Open executes
/// `source` and materialises its bag; later consumers (and re-Opens) stream
/// the cached relation without re-running the subtree.  The cache lives for
/// the physical tree's lifetime — trees are lowered per execution, so a
/// stale cache cannot outlive the plan that computed it.
struct SubplanState {
  PhysOpPtr source;
  Relation cached;
  bool materialized = false;
};

/// Streams a shared, lazily materialised subplan result (the physical side
/// of the subplan-reuse rewrite: a logical subtree appearing k times is
/// lowered once and scanned k times).  Exactly one consumer — the first
/// one created — owns the rendering of the wrapped subtree; the others
/// render as leaves annotated as reuses.
class SubplanCacheOp final : public PhysicalOperator {
 public:
  SubplanCacheOp(std::shared_ptr<SubplanState> state, bool owner);

  const RelationSchema& schema() const override;
  std::string_view name() const override { return "SubplanCache"; }
  std::vector<const PhysicalOperator*> children() const override;

 protected:
  Status OpenImpl() override;
  Result<std::optional<Row>> NextImpl() override;
  Status NextBatchImpl(RowBatch& out) override;
  void CloseImpl() override;

 private:
  std::shared_ptr<SubplanState> state_;
  bool owner_;
  Relation::const_iterator it_;
};

/// Γ — hash aggregation (Definition 3.4 with the Definition 3.3
/// multiplicity-weighted aggregates).  Builds the group table on Open by
/// draining the child batch-at-a-time into a recycled HashKeyIndex with a
/// flat accumulator arena (group id × aggregate), then streams one output
/// row per group, finishing accumulators lazily — AVG/MIN/MAX partiality
/// over an empty input surfaces as kUndefined at emission, exactly like
/// the definitional operator.
class HashGroupByOp final : public PhysicalOperator {
 public:
  HashGroupByOp(std::vector<size_t> keys, std::vector<AggSpec> aggs,
                RelationSchema output_schema, PhysOpPtr child);

  const RelationSchema& schema() const override { return schema_; }
  std::string_view name() const override { return "HashGroupBy"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {child_.get()};
  }

 protected:
  Status OpenImpl() override;
  Result<std::optional<Row>> NextImpl() override;
  Status NextBatchImpl(RowBatch& out) override;
  void CloseImpl() override;

 private:
  /// The output row for one group id: key attributes ⊕ finished aggregates.
  Result<Row> EmitGroup(size_t id);

  std::vector<size_t> keys_;
  std::vector<AggSpec> aggs_;
  RelationSchema schema_;
  PhysOpPtr child_;

  HashKeyIndex index_;
  std::vector<AggAccumulator> accs_;  // index_.size() × aggs_.size(), flat.
  size_t emit_pos_ = 0;
};

/// Extracts equi-join key pairs from a join condition over a concatenated
/// schema: conjuncts of the form %i = %j with i referencing the left side
/// (index < left_arity), j the right side, and equal attribute domains (so
/// hash-key equality coincides with = semantics) become key pairs;
/// everything else goes to `residual` (null when empty).  Returns true when
/// at least one key pair was found (hash join applies).
bool ExtractEquiJoinKeys(const ExprPtr& condition,
                         const RelationSchema& combined_schema,
                         size_t left_arity, std::vector<size_t>* left_keys,
                         std::vector<size_t>* right_keys, ExprPtr* residual);

}  // namespace exec
}  // namespace mra

#endif  // MRA_EXEC_OPERATOR_H_
