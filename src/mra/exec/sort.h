// Ordered emission for the bag-stream executor: SortOp materialises its
// child, orders the rows under the shared ops::CompareForSort total order
// (sort keys with per-key direction, then a whole-tuple ascending
// tiebreak), and re-emits them as an ordered bag stream.  Multiplicities
// stay folded: a row carrying count 1e6 is one run entry, never a million.
//
// Memory discipline (docs/EXECUTION.md "Ordering and spill"): buffered
// rows are charged against the query budget per input batch; when the
// buffer crosses the spill threshold — the `sort_spill_bytes` knob, or
// half the armed query memory budget, whichever is smaller — the buffer
// is sorted and written out as a merge run through the storage encoder,
// and emission becomes a k-way streaming merge over the run files.  A
// LIMIT turns the buffer into a weighted Top-K heap: entries provably
// outside the top `limit` multiplicity-weight are pruned before they can
// force a spill, and per-run pruning stays sound because a tuple outside
// one run's top-k cannot enter the global top-k.
//
// SortMergeJoinOp is the planner's second equi-join strategy: both inputs
// run through internal SortOps on the join keys (inheriting the spill
// machinery and the ExecContext wiring through children()), then a single
// forward pass pairs equal-key groups; output multiplicity is the product
// of the matched input multiplicities (Definition 3.1), with non-equi
// residual conjuncts applied to the concatenated tuple.

#ifndef MRA_EXEC_SORT_H_
#define MRA_EXEC_SORT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mra/exec/operator.h"
#include "mra/expr/scalar_expr.h"

namespace mra {
namespace exec {

/// Ordered emission with optional weighted LIMIT and external-merge spill.
class SortOp final : public PhysicalOperator {
 public:
  /// `keys`/`desc` index the child schema; `limit` 0 means full sort.
  /// `spill_bytes` is ExecConfig::exec.sort_spill_bytes (0 = no fixed run
  /// cap; the budget-derived cap still applies when a budget is armed).
  SortOp(std::vector<size_t> keys, std::vector<bool> desc, uint64_t limit,
         uint64_t spill_bytes, PhysOpPtr child);
  ~SortOp() override;

  const RelationSchema& schema() const override { return child_->schema(); }
  std::string_view name() const override { return "Sort"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {child_.get()};
  }

  /// Merge runs written by the last Open (0 for a fully in-memory sort);
  /// survives Close so tests can assert the forced-spill path spilled.
  size_t spilled_runs() const { return spilled_runs_; }

  uint64_t limit() const { return limit_; }

 protected:
  Status OpenImpl() override;
  Result<std::optional<Row>> NextImpl() override;
  void CloseImpl() override;

 private:
  struct RunReader;

  /// The whole Open body; OpenImpl wraps it so every failure path (child
  /// error, injected spill fault, budget trip) funnels through AbortOpen —
  /// the wrapper never calls CloseImpl after a failed Open, so run files
  /// must be reclaimed here.
  Status OpenInner();
  void AbortOpen();

  /// Sorts buffer_ and writes it as one length-prefixed run file
  /// (run.tmp, fsync-free write, then rename); clears the buffer.
  Status SpillRun();

  /// Weighted Top-K pruning: pops heap entries that provably cannot reach
  /// the top `limit_` multiplicity-weight.
  void PruneTopK();

  /// Initialises the k-way merge over run_files_ (readers + min-heap).
  Status StartMerge();

  void RemoveRunFiles();

  /// Clamps `row` against the remaining LIMIT weight; nullopt when the
  /// limit is exhausted.
  std::optional<Row> ClampEmit(Row row);

  std::vector<size_t> keys_;
  std::vector<bool> desc_;
  uint64_t limit_;
  uint64_t spill_bytes_;
  PhysOpPtr child_;

  // In-memory buffer: plain rows for a full sort, a max-heap (worst entry
  // at the front) while a LIMIT is pruning.
  std::vector<Row> buffer_;
  uint64_t buffer_bytes_ = 0;
  uint64_t buffer_weight_ = 0;  // Multiplicity-weighted size of buffer_.
  size_t pos_ = 0;              // In-memory emission cursor.
  uint64_t emitted_weight_ = 0;

  // Spill state.
  size_t spilled_runs_ = 0;  // Runs written by the last Open; survives Close.
  std::vector<std::string> run_files_;
  std::vector<std::unique_ptr<RunReader>> readers_;
  std::vector<size_t> merge_heap_;  // Reader indexes, min-heap on current.
  bool merging_ = false;

  // Planner annotation captured on first Open so the runtime spill note
  // can be re-derived instead of re-appended on reopen.
  std::string base_annotation_;
  bool base_annotation_captured_ = false;
};

/// Equi-join by merge over key-sorted inputs.
class SortMergeJoinOp final : public PhysicalOperator {
 public:
  /// `left_keys[i]` pairs with `right_keys[i]` (indexes local to each
  /// side); `residual_or_null` is evaluated over the concatenated tuple.
  /// `spill_bytes` is forwarded to the internal per-input SortOps.
  SortMergeJoinOp(std::vector<size_t> left_keys,
                  std::vector<size_t> right_keys, ExprPtr residual_or_null,
                  PhysOpPtr left, PhysOpPtr right, uint64_t spill_bytes);

  const RelationSchema& schema() const override { return schema_; }
  std::string_view name() const override { return "SortMergeJoin"; }
  std::vector<const PhysicalOperator*> children() const override {
    return {left_sort_.get(), right_sort_.get()};
  }

 protected:
  Status OpenImpl() override;
  Result<std::optional<Row>> NextImpl() override;
  void CloseImpl() override;

 private:
  /// left key attrs vs right key attrs under Value::Compare, in key order.
  int CompareKeys(const Tuple& left, const Tuple& right) const;

  /// Consumes every row whose key equals `group.front()`'s from `side`
  /// into `group`, leaving the first differing row in `ahead`.
  Status FillGroup(PhysicalOperator& side, const std::vector<size_t>& keys,
                   std::optional<Row>& ahead, std::vector<Row>& group);

  std::vector<size_t> left_keys_;
  std::vector<size_t> right_keys_;
  ExprPtr residual_;
  std::unique_ptr<SortOp> left_sort_;
  std::unique_ptr<SortOp> right_sort_;
  RelationSchema schema_;

  std::optional<Row> left_ahead_;
  std::optional<Row> right_ahead_;
  std::vector<Row> left_group_;
  std::vector<Row> right_group_;
  size_t li_ = 0;  // Cross-product cursor over the current group pair.
  size_t rj_ = 0;
};

}  // namespace exec
}  // namespace mra

#endif  // MRA_EXEC_SORT_H_
