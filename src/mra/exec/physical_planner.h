// Lowers logical plans to physical operator trees and runs them.
//
// Lowering choices:
//   σ        → Filter
//   π        → Compute
//   δ        → Dedup (streaming hash), SortDedup when hash ops are disabled
//   ⊎        → UnionAll (streaming)
//   −        → Difference (materialising)
//   ∩        → Intersect (materialising)
//   ×        → NestedLoopJoin without condition
//   ⋈_φ      → HashJoin when φ contains same-domain equi-conjuncts %i = %j
//              across the inputs (residual applied after the probe);
//              SortMergeJoin instead when the `sort_merge_join` knob forces
//              it or the estimated hash build would trip an armed memory
//              budget (the sorted inputs spill — docs/OPTIMIZER.md);
//              NestedLoopJoin otherwise
//   Γ        → HashGroupBy
//   sort     → Sort (in-memory, or external merge past the spill
//              threshold; weighted Top-K heap under a LIMIT)
//
// When `config.exec.workers > 1` the hash kernels additionally lower to
// their morsel-driven partitioned variants (ParallelHashJoin,
// ParallelHashGroupBy, ParallelDedup — docs/PARALLELISM.md) for operators
// whose estimated input reaches `config.exec.parallel_threshold`; below
// the threshold the serial kernel wins on fan-out overhead alone, and with
// no estimator the planner stays serial rather than guess.
//
// Each choice is annotated on the operator (PhysicalOperator::annotation):
// HashJoin shows its key pairs, parallel variants their lane count, the
// fallbacks say why they were taken — so EXPLAIN makes the selection
// visible.  `config.exec.hash_ops = false` steers δ to SortDedup and ⋈ to
// NestedLoopJoin (Γ keeps HashGroupBy — it is the only Γ implementation)
// and disables the parallel variants, which are hash-partitioned.

#ifndef MRA_EXEC_PHYSICAL_PLANNER_H_
#define MRA_EXEC_PHYSICAL_PLANNER_H_

#include <functional>

#include "mra/algebra/evaluator.h"
#include "mra/algebra/plan.h"
#include "mra/common/config.h"
#include "mra/exec/operator.h"

namespace mra {
namespace exec {

/// Predicts the multiplicity-weighted cardinality of a logical plan node.
/// Lowering is node-isomorphic (one physical operator per logical node), so
/// annotating each physical operator with the estimate of its logical
/// counterpart is exact.  Kept as a callback so exec does not depend on
/// mra/opt; callers typically wrap opt::EstimateCardinality.
using CardinalityEstimator = std::function<double(const Plan&)>;

/// Builds an executable operator tree for `plan`.  Scan nodes resolve
/// through `provider`, whose relations must outlive the returned tree's
/// execution.  When `estimator` is non-null every operator is annotated
/// with its logical node's estimate (PhysicalOperator::estimated_rows),
/// which EXPLAIN ANALYZE renders against the actuals — and which also
/// drives the parallel-variant decision (see the header comment).
/// `config` supplies the kernel-selection and parallelism knobs
/// (exec.hash_ops, exec.workers, exec.morsel_size, exec.parallel_threshold,
/// planner.subplan_reuse); the remaining layers are the callers' business.
/// `exec_ctx`, when non-null, is attached to every operator of the lowered
/// tree (cancellation / deadline / memory budget) and must outlive
/// execution.
Result<PhysOpPtr> LowerPlan(const PlanPtr& plan,
                            const RelationProvider& provider,
                            const CardinalityEstimator* estimator = nullptr,
                            const ExecConfig& config = ExecConfig{},
                            ExecContext* exec_ctx = nullptr);

/// Lower + execute + materialise.  This is the production evaluation path
/// (EvaluatePlan in mra/algebra is the definitional one).
Result<Relation> ExecutePlan(const PlanPtr& plan,
                             const RelationProvider& provider);

}  // namespace exec
}  // namespace mra

#endif  // MRA_EXEC_PHYSICAL_PLANNER_H_
