// Lowers logical plans to physical operator trees and runs them.
//
// Lowering choices:
//   σ        → Filter
//   π        → Compute
//   δ        → Dedup (streaming hash), SortDedup when hash ops are disabled
//   ⊎        → UnionAll (streaming)
//   −        → Difference (materialising)
//   ∩        → Intersect (materialising)
//   ×        → NestedLoopJoin without condition
//   ⋈_φ      → HashJoin when φ contains same-domain equi-conjuncts %i = %j
//              across the inputs (residual applied after the probe),
//              NestedLoopJoin otherwise
//   Γ        → HashGroupBy
//
// Each choice is annotated on the operator (PhysicalOperator::annotation):
// HashJoin shows its key pairs, the fallbacks say why they were taken — so
// EXPLAIN makes the selection visible.  PlannerOptions::hash_ops = false
// steers δ to SortDedup and ⋈ to NestedLoopJoin (Γ keeps HashGroupBy — it
// is the only Γ implementation).

#ifndef MRA_EXEC_PHYSICAL_PLANNER_H_
#define MRA_EXEC_PHYSICAL_PLANNER_H_

#include <functional>

#include "mra/algebra/evaluator.h"
#include "mra/algebra/plan.h"
#include "mra/exec/operator.h"

namespace mra {
namespace exec {

/// Predicts the multiplicity-weighted cardinality of a logical plan node.
/// Lowering is node-isomorphic (one physical operator per logical node), so
/// annotating each physical operator with the estimate of its logical
/// counterpart is exact.  Kept as a callback so exec does not depend on
/// mra/opt; callers typically wrap opt::EstimateCardinality.
using CardinalityEstimator = std::function<double(const Plan&)>;

/// Knobs for physical-operator selection.
struct PlannerOptions {
  /// Use the hash-based kernels (HashJoin, streaming hash Dedup) where they
  /// apply.  When false, δ lowers to SortDedup and ⋈ to NestedLoopJoin —
  /// the definitional/legacy paths the hash kernels are benchmarked and
  /// differentially tested against.
  bool hash_ops = true;
  /// Lower a duplicated expensive subtree (⋈, Γ, δ, −, ∩, closure) once
  /// and stream its materialised result at every occurrence
  /// (SubplanCacheOp).  Bag-preserving: reuse sites scan the identical
  /// result relation the subtree would have produced.
  bool subplan_reuse = true;
  /// Per-query governance context (cancellation / deadline / memory
  /// budget) attached to every operator of the lowered tree.  Null (the
  /// default) lowers an ungoverned plan.  Must outlive execution.
  ExecContext* exec_ctx = nullptr;
};

/// Builds an executable operator tree for `plan`.  Scan nodes resolve
/// through `provider`, whose relations must outlive the returned tree's
/// execution.  When `estimator` is non-null every operator is annotated
/// with its logical node's estimate (PhysicalOperator::estimated_rows),
/// which EXPLAIN ANALYZE renders against the actuals.
Result<PhysOpPtr> LowerPlan(const PlanPtr& plan,
                            const RelationProvider& provider,
                            const CardinalityEstimator* estimator = nullptr,
                            const PlannerOptions& options = PlannerOptions{});

/// Lower + execute + materialise.  This is the production evaluation path
/// (EvaluatePlan in mra/algebra is the definitional one).
Result<Relation> ExecutePlan(const PlanPtr& plan,
                             const RelationProvider& provider);

}  // namespace exec
}  // namespace mra

#endif  // MRA_EXEC_PHYSICAL_PLANNER_H_
