// Lowers logical plans to physical operator trees and runs them.
//
// Lowering choices:
//   σ        → Filter
//   π        → Compute
//   δ        → Dedup (streaming)
//   ⊎        → UnionAll (streaming)
//   −        → Difference (materialising)
//   ∩        → Intersect (materialising)
//   ×        → NestedLoopJoin without condition
//   ⋈_φ      → HashJoin when φ contains same-domain equi-conjuncts %i = %j
//              across the inputs (residual applied after the probe),
//              NestedLoopJoin otherwise
//   Γ        → HashGroupBy

#ifndef MRA_EXEC_PHYSICAL_PLANNER_H_
#define MRA_EXEC_PHYSICAL_PLANNER_H_

#include <functional>

#include "mra/algebra/evaluator.h"
#include "mra/algebra/plan.h"
#include "mra/exec/operator.h"

namespace mra {
namespace exec {

/// Predicts the multiplicity-weighted cardinality of a logical plan node.
/// Lowering is node-isomorphic (one physical operator per logical node), so
/// annotating each physical operator with the estimate of its logical
/// counterpart is exact.  Kept as a callback so exec does not depend on
/// mra/opt; callers typically wrap opt::EstimateCardinality.
using CardinalityEstimator = std::function<double(const Plan&)>;

/// Builds an executable operator tree for `plan`.  Scan nodes resolve
/// through `provider`, whose relations must outlive the returned tree's
/// execution.  When `estimator` is non-null every operator is annotated
/// with its logical node's estimate (PhysicalOperator::estimated_rows),
/// which EXPLAIN ANALYZE renders against the actuals.
Result<PhysOpPtr> LowerPlan(const PlanPtr& plan,
                            const RelationProvider& provider,
                            const CardinalityEstimator* estimator = nullptr);

/// Lower + execute + materialise.  This is the production evaluation path
/// (EvaluatePlan in mra/algebra is the definitional one).
Result<Relation> ExecutePlan(const PlanPtr& plan,
                             const RelationProvider& provider);

}  // namespace exec
}  // namespace mra

#endif  // MRA_EXEC_PHYSICAL_PLANNER_H_
