#include "mra/exec/operator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "mra/algebra/closure.h"
#include "mra/common/annotation.h"
#include "mra/expr/eval.h"
#include "mra/fault/failpoint.h"
#include "mra/obs/metrics.h"

namespace mra {
namespace exec {

namespace {

// Process-wide hash-operator metrics, recorded once per operator
// open/close cycle (not per row): build/probe volumes and the largest
// arena any single operator held.
obs::Counter* HashBuildRowsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("hash.build_rows");
  return c;
}

obs::Counter* HashProbeRowsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("hash.probe_rows");
  return c;
}

void NoteHashPeakBytes(uint64_t bytes) {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("hash.peak_bytes");
  // Max-tracked; the read-modify-write race is benign for a high-water
  // gauge (a concurrent larger value wins either way on the next update).
  if (static_cast<uint64_t>(g->value()) < bytes) {
    g->Set(static_cast<int64_t>(bytes));
  }
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Deterministic cancel-point injection for the governance tests: arming
// one of these sites (any action) requests cancellation at exactly that
// lifecycle point — before OpenImpl, before a NextBatchImpl, or at the
// start of Close.  Disarmed cost: one relaxed atomic load, same as every
// other failpoint site.
fault::Failpoint* CancelOpenFp() {
  static fault::Failpoint* fp =
      fault::FaultRegistry::Global().Get("exec.cancel.open");
  return fp;
}

fault::Failpoint* CancelBatchFp() {
  static fault::Failpoint* fp =
      fault::FaultRegistry::Global().Get("exec.cancel.batch");
  return fp;
}

fault::Failpoint* CancelCloseFp() {
  static fault::Failpoint* fp =
      fault::FaultRegistry::Global().Get("exec.cancel.close");
  return fp;
}

// True when the armed failpoint fired on this hit.
bool FpFired(fault::Failpoint* fp) {
  return fp->Hit().kind != fault::ActionKind::kOff;
}

// Budget-accounting estimates for materialising operators.  Deliberately
// coarse (struct footprint + string payloads): the budget guards against
// runaway builds, not byte-exact accounting.
uint64_t ApproxTupleBytes(const Tuple& tuple) {
  uint64_t bytes = sizeof(Tuple) + tuple.arity() * sizeof(Value);
  for (const Value& v : tuple.values()) {
    if (v.kind() == TypeKind::kString) bytes += v.string_value().capacity();
  }
  return bytes;
}

uint64_t ApproxRelationBytes(const Relation& rel) {
  uint64_t bytes = sizeof(Relation);
  for (const auto& [tuple, count] : rel) {
    (void)count;
    bytes += ApproxTupleBytes(tuple) + sizeof(uint64_t) + 2 * sizeof(void*);
  }
  return bytes;
}

// Per-operator batch latency distribution, only fed while exec timing is
// on (EXPLAIN ANALYZE, or a server started with timing enabled).
obs::Histogram* OpBatchLatency() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram("exec.op_batch_us");
  return h;
}

void RenderPhysical(const PhysicalOperator& op, int depth,
                    std::ostream& out) {
  for (int i = 0; i < depth; ++i) out << "  ";
  out << op.name();
  if (!op.annotation().empty()) {
    out << "  " << BracketAnnotation(op.annotation());
  }
  out << "\n";
  for (const PhysicalOperator* child : op.children()) {
    RenderPhysical(*child, depth + 1, out);
  }
}

void RenderAnalyzed(const PhysicalOperator& op, int depth, std::ostream& out) {
  for (int i = 0; i < depth; ++i) out << "  ";
  out << op.name();
  if (!op.annotation().empty()) {
    out << "  " << BracketAnnotation(op.annotation());
  }
  const obs::OperatorMetrics& m = op.metrics();
  char buf[64];
  if (op.estimated_rows() >= 0.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", op.estimated_rows());
    out << "  (est=" << buf;
    // Estimation error as a symmetric over/under factor against the
    // multiplicity-weighted actual (what EstimateCardinality predicts).
    double actual = static_cast<double>(m.weighted_rows);
    double est = op.estimated_rows() < 1.0 ? 1.0 : op.estimated_rows();
    double act = actual < 1.0 ? 1.0 : actual;
    double err = est >= act ? est / act : act / est;
    std::snprintf(buf, sizeof(buf), "%.2f", err);
    out << ", err=" << buf << "x)";
  } else {
    // No estimate for this node (unknown relation, no statistics): render
    // explicit placeholders rather than a misleading default, keeping the
    // column layout stable.
    out << "  (est=-, err=-)";
  }
  out << "  (actual rows=" << m.rows_emitted
      << " weighted=" << m.weighted_rows;
  // `batches` and `time` render uniformly across nodes: `-` marks the
  // row-at-a-time path (no batches) and an untimed run respectively, so
  // the columns line up whatever mode produced the tree.
  out << " batches=";
  if (m.batches_emitted > 0) {
    out << m.batches_emitted;
  } else {
    out << "-";
  }
  if (m.distinct_rows > 0) out << " distinct=" << m.distinct_rows;
  if (m.peak_hash_entries > 0) out << " hash=" << m.peak_hash_entries;
  if (m.build_rows > 0) out << " build=" << m.build_rows;
  if (m.probe_rows > 0) out << " probe=" << m.probe_rows;
  if (m.hash_bytes > 0) out << " hashKB=" << (m.hash_bytes + 1023) / 1024;
  if (m.workers > 0) out << " workers=" << m.workers;
  if (m.cpu_ns > 0) {
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(m.cpu_ns) / 1e6);
    out << " cpu=" << buf << "ms";
  }
  if (m.timed) {
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(m.total_ns()) / 1e6);
    out << " time=" << buf << "ms";
  } else {
    out << " time=-";
  }
  out << ")\n";
  for (const PhysicalOperator* child : op.children()) {
    RenderAnalyzed(*child, depth + 1, out);
  }
}

}  // namespace

Status PhysicalOperator::Open() {
  MRA_CHECK(state_ != State::kOpen) << "Open() while already open";
  if (state_ == State::kClosed) metrics_.ResetRuntime();
  charged_bytes_ = 0;
  timing_ = obs::ExecTimingEnabled();
  metrics_.timed = timing_;
  if (exec_ctx_ != nullptr) {
    if (FpFired(CancelOpenFp())) exec_ctx_->RequestCancel();
    Status g = exec_ctx_->Check();
    if (!g.ok()) {
      // A failed Open leaves the operator Closed (same contract as a
      // failing OpenImpl below), so the unwind can Close the whole tree.
      state_ = State::kClosed;
      return g;
    }
  }
  Status s;
  if (timing_) {
    uint64_t t0 = NowNs();
    s = OpenImpl();
    metrics_.open_ns += NowNs() - t0;
  } else {
    s = OpenImpl();
  }
  // A failed Open leaves the operator Closed: resources the impl did
  // acquire are released by Close-idempotent destruction paths, and the
  // contract (Next only after a successful Open) stays enforced.  Budget
  // charges do not wait for the destructor — a build that tripped the
  // budget mid-Open hands its bytes back to the query right here.
  state_ = s.ok() ? State::kOpen : State::kClosed;
  if (!s.ok() && exec_ctx_ != nullptr && charged_bytes_ > 0) {
    exec_ctx_->Release(charged_bytes_);
    charged_bytes_ = 0;
  }
  return s;
}

Result<std::optional<Row>> PhysicalOperator::Next() {
  MRA_CHECK(state_ == State::kOpen) << "Next() before Open()";
  if (exec_ctx_ != nullptr) {
    // The row-at-a-time path checks per row; the relaxed-load cost is in
    // the noise next to the per-row virtual dispatch it rides on.
    Status g = exec_ctx_->Check();
    if (!g.ok()) return g;
  }
  if (timing_) {
    uint64_t t0 = NowNs();
    Result<std::optional<Row>> row = NextImpl();
    metrics_.next_ns += NowNs() - t0;
    if (row.ok() && row->has_value()) {
      ++metrics_.rows_emitted;
      metrics_.weighted_rows += (*row)->count;
    }
    return row;
  }
  Result<std::optional<Row>> row = NextImpl();
  if (row.ok() && row->has_value()) {
    ++metrics_.rows_emitted;
    metrics_.weighted_rows += (*row)->count;
  }
  return row;
}

Status PhysicalOperator::NextBatch(RowBatch& out) {
  MRA_CHECK(state_ == State::kOpen) << "NextBatch() before Open()";
  out.Clear();
  if (exec_ctx_ != nullptr) {
    // The cooperative governance check: one relaxed atomic load per batch
    // when the query is ungoverned beyond cancellation, plus a clock read
    // when a deadline is armed — which bounds a kill to one batch.
    if (FpFired(CancelBatchFp())) exec_ctx_->RequestCancel();
    Status g = exec_ctx_->Check();
    if (!g.ok()) return g;
  }
  Status s;
  if (timing_) {
    uint64_t t0 = NowNs();
    s = NextBatchImpl(out);
    uint64_t elapsed_ns = NowNs() - t0;
    metrics_.next_ns += elapsed_ns;
    OpBatchLatency()->Observe(elapsed_ns / 1000);
  } else {
    s = NextBatchImpl(out);
  }
  if (s.ok() && !out.empty()) {
    ++metrics_.batches_emitted;
    metrics_.rows_emitted += out.size();
    uint64_t weighted = 0;
    for (const Row& row : out) weighted += row.count;
    metrics_.weighted_rows += weighted;
  }
  return s;
}

Status PhysicalOperator::NoteHashFootprint(uint64_t bytes) {
  if (bytes > metrics_.hash_bytes) {
    metrics_.hash_bytes = bytes;
    NoteHashPeakBytes(bytes);
  }
  return ChargeMemTo(bytes);
}

// Default adapter: any operator with only a row-at-a-time NextImpl still
// serves batches.  Calls NextImpl directly (not the public Next()) so the
// batch wrapper above is the single place metrics accrue.
Status PhysicalOperator::NextBatchImpl(RowBatch& out) {
  while (!out.full()) {
    MRA_ASSIGN_OR_RETURN(std::optional<Row> row, NextImpl());
    if (!row.has_value()) break;
    out.Add(*std::move(row));
  }
  return Status::OK();
}

void PhysicalOperator::Close() {
  if (state_ != State::kOpen) return;  // Contract: double/early Close is safe.
  if (exec_ctx_ != nullptr && FpFired(CancelCloseFp())) {
    // Close never fails, so a cancel landing here only marks the context;
    // the unwind in progress keeps releasing resources below.
    exec_ctx_->RequestCancel();
  }
  if (timing_) {
    uint64_t t0 = NowNs();
    CloseImpl();
    metrics_.close_ns += NowNs() - t0;
  } else {
    CloseImpl();
  }
  // Whatever the impl still had charged goes back to the query budget —
  // this is what makes "killed query releases its memory" a wrapper-level
  // guarantee instead of a per-operator obligation.
  if (exec_ctx_ != nullptr && charged_bytes_ > 0) {
    exec_ctx_->Release(charged_bytes_);
    charged_bytes_ = 0;
  }
  state_ = State::kClosed;
}

std::string PhysicalOperator::ToString() const {
  std::ostringstream out;
  RenderPhysical(*this, 0, out);
  return out.str();
}

std::string RenderPlanWithMetrics(const PhysicalOperator& root) {
  std::ostringstream out;
  RenderAnalyzed(root, 0, out);
  return out.str();
}

Result<Relation> ExecuteToRelation(PhysicalOperator& op, size_t batch_size) {
  MRA_RETURN_IF_ERROR(op.Open());
  Relation out(op.schema());
  if (batch_size == 0) {
    // Legacy row-at-a-time drain.
    while (true) {
      MRA_ASSIGN_OR_RETURN(std::optional<Row> row, op.Next());
      if (!row.has_value()) break;
      out.InsertUnchecked(std::move(row->tuple), row->count);
    }
  } else {
    RowBatch batch(batch_size);
    while (true) {
      MRA_RETURN_IF_ERROR(op.NextBatch(batch));
      if (batch.empty()) break;
      for (Row& row : batch) {
        out.InsertUnchecked(std::move(row.tuple), row.count);
      }
    }
  }
  op.Close();
  return out;
}

// --- ScanOp. ---

ScanOp::ScanOp(const Relation* relation) : relation_(relation) {
  MRA_CHECK(relation != nullptr);
}

Status ScanOp::OpenImpl() {
  it_ = relation_->begin();
  return Status::OK();
}

Result<std::optional<Row>> ScanOp::NextImpl() {
  if (it_ == relation_->end()) return std::optional<Row>();
  Row row{it_->first, it_->second};
  ++it_;
  return std::optional<Row>(std::move(row));
}

Status ScanOp::NextBatchImpl(RowBatch& out) {
  for (; it_ != relation_->end() && !out.full(); ++it_) {
    // Copy-assign into the recycled slot: the tuple's value storage from
    // the previous batch is reused, so a steady-state scan never
    // allocates.
    Row& slot = out.AppendSlot();
    slot.tuple = it_->first;
    slot.count = it_->second;
  }
  return Status::OK();
}

void ScanOp::CloseImpl() {}

const RelationSchema& ScanOp::schema() const { return relation_->schema(); }

// --- ConstScanOp. ---

ConstScanOp::ConstScanOp(Relation relation) : relation_(std::move(relation)) {}

Status ConstScanOp::OpenImpl() {
  it_ = relation_.begin();
  return Status::OK();
}

Result<std::optional<Row>> ConstScanOp::NextImpl() {
  if (it_ == relation_.end()) return std::optional<Row>();
  Row row{it_->first, it_->second};
  ++it_;
  return std::optional<Row>(std::move(row));
}

Status ConstScanOp::NextBatchImpl(RowBatch& out) {
  for (; it_ != relation_.end() && !out.full(); ++it_) {
    Row& slot = out.AppendSlot();
    slot.tuple = it_->first;
    slot.count = it_->second;
  }
  return Status::OK();
}

void ConstScanOp::CloseImpl() {}

const RelationSchema& ConstScanOp::schema() const {
  return relation_.schema();
}

// --- FilterOp. ---

FilterOp::FilterOp(ExprPtr condition, PhysOpPtr child)
    : condition_(std::move(condition)), child_(std::move(child)) {}

Status FilterOp::OpenImpl() {
  compiled_ = CompiledPredicate::Compile(condition_, child_->schema());
  return child_->Open();
}

Result<std::optional<Row>> FilterOp::NextImpl() {
  while (true) {
    MRA_ASSIGN_OR_RETURN(std::optional<Row> row, child_->Next());
    if (!row.has_value()) return row;
    MRA_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*condition_, row->tuple));
    if (keep) return row;
  }
}

Status FilterOp::NextBatchImpl(RowBatch& out) {
  // In-place: the child fills `out`, then surviving rows are compacted to
  // the front by swap — O(1) per row, and every tuple buffer (kept or
  // dropped) stays parked in the batch for the child's next refill.
  // Pull again until at least one row survives (an empty output means end
  // of stream) or the child drains.
  while (true) {
    MRA_RETURN_IF_ERROR(child_->NextBatch(out));
    if (out.empty()) return Status::OK();
    size_t kept = 0;
    if (compiled_.has_value()) {
      for (size_t i = 0; i < out.size(); ++i) {
        if (compiled_->Matches(out[i].tuple)) {
          if (kept != i) std::swap(out[kept], out[i]);
          ++kept;
        }
      }
    } else {
      for (size_t i = 0; i < out.size(); ++i) {
        MRA_ASSIGN_OR_RETURN(bool keep,
                             EvalPredicate(*condition_, out[i].tuple));
        if (keep) {
          if (kept != i) std::swap(out[kept], out[i]);
          ++kept;
        }
      }
    }
    out.Truncate(kept);
    if (kept > 0) return Status::OK();
  }
}

void FilterOp::CloseImpl() { child_->Close(); }

// --- ComputeOp. ---

ComputeOp::ComputeOp(std::vector<ExprPtr> exprs, RelationSchema output_schema,
                     PhysOpPtr child)
    : exprs_(std::move(exprs)),
      schema_(std::move(output_schema)),
      child_(std::move(child)) {}

Status ComputeOp::OpenImpl() {
  attr_only_ = AttrOnlyProjection(exprs_, child_->schema().arity());
  return child_->Open();
}

Result<std::optional<Row>> ComputeOp::NextImpl() {
  MRA_ASSIGN_OR_RETURN(std::optional<Row> row, child_->Next());
  if (!row.has_value()) return row;
  MRA_ASSIGN_OR_RETURN(Tuple projected, ProjectTuple(exprs_, row->tuple));
  return std::optional<Row>(Row{std::move(projected), row->count});
}

Status ComputeOp::NextBatchImpl(RowBatch& out) {
  // In-place: the child fills `out` and each row's tuple is rewritten
  // where it sits (multiplicities pass through unchanged).
  MRA_RETURN_IF_ERROR(child_->NextBatch(out));
  if (attr_only_.has_value()) {
    // Project into the recycled scratch tuple, then swap it in: the row's
    // old buffer becomes the next scratch, so the loop is allocation-free
    // once warm.
    for (Row& row : out) {
      scratch_.AssignProjection(row.tuple, *attr_only_);
      row.tuple.Swap(scratch_);
    }
    return Status::OK();
  }
  for (Row& row : out) {
    MRA_ASSIGN_OR_RETURN(Tuple projected, ProjectTuple(exprs_, row.tuple));
    row.tuple = std::move(projected);
  }
  return Status::OK();
}

void ComputeOp::CloseImpl() { child_->Close(); }

// --- DedupOp. ---

DedupOp::DedupOp(PhysOpPtr child) : child_(std::move(child)) {
  identity_.resize(child_->schema().arity());
  for (size_t i = 0; i < identity_.size(); ++i) identity_[i] = i;
}

Status DedupOp::OpenImpl() {
  seen_.Reset();
  return child_->Open();
}

Result<std::optional<Row>> DedupOp::NextImpl() {
  while (true) {
    MRA_ASSIGN_OR_RETURN(std::optional<Row> row, child_->Next());
    if (!row.has_value()) return row;
    ++metrics_.build_rows;
    bool inserted = false;
    seen_.InsertKey(row->tuple, identity_, &inserted);
    if (inserted) {
      MRA_RETURN_IF_ERROR(NoteHashFootprint(seen_.ApproxBytes()));
      return std::optional<Row>(Row{std::move(row->tuple), 1});
    }
  }
}

Status DedupOp::NextBatchImpl(RowBatch& out) {
  // In-place like FilterOp: the child fills `out`, first occurrences are
  // compacted to the front with multiplicity 1, duplicates stay parked for
  // the child's next refill.  Pull again until something survives or the
  // child drains.
  while (true) {
    MRA_RETURN_IF_ERROR(child_->NextBatch(out));
    if (out.empty()) return Status::OK();
    metrics_.build_rows += out.size();
    size_t kept = 0;
    for (size_t i = 0; i < out.size(); ++i) {
      bool inserted = false;
      seen_.InsertKey(out[i].tuple, identity_, &inserted);
      if (inserted) {
        if (kept != i) std::swap(out[kept], out[i]);
        out[kept].count = 1;
        ++kept;
      }
    }
    out.Truncate(kept);
    MRA_RETURN_IF_ERROR(NoteHashFootprint(seen_.ApproxBytes()));
    if (kept > 0) return Status::OK();
  }
}

void DedupOp::CloseImpl() {
  metrics_.distinct_rows = seen_.size();
  metrics_.peak_hash_entries = seen_.size();
  metrics_.hash_bytes = seen_.ApproxBytes();
  HashBuildRowsCounter()->Inc(metrics_.build_rows);
  NoteHashPeakBytes(metrics_.hash_bytes);
  seen_.Reset();
  child_->Close();
}

// --- SortDedupOp. ---

SortDedupOp::SortDedupOp(PhysOpPtr child) : child_(std::move(child)) {}

Status SortDedupOp::OpenImpl() {
  tuples_.clear();
  pos_ = 0;
  MRA_RETURN_IF_ERROR(child_->Open());
  RowBatch batch;
  uint64_t materialized_bytes = 0;
  while (true) {
    MRA_RETURN_IF_ERROR(child_->NextBatch(batch));
    if (batch.empty()) break;
    for (Row& row : batch) {
      materialized_bytes += ApproxTupleBytes(row.tuple);
      tuples_.push_back(std::move(row.tuple));
    }
    // Budget check per input batch, so a runaway sort input is caught
    // while it grows, not after it is fully resident.
    MRA_RETURN_IF_ERROR(ChargeMemTo(materialized_bytes));
  }
  child_->Close();
  std::sort(tuples_.begin(), tuples_.end(),
            [](const Tuple& a, const Tuple& b) {
              for (size_t i = 0; i < a.arity(); ++i) {
                int c = a.at(i).Compare(b.at(i));
                if (c != 0) return c < 0;
              }
              return false;
            });
  tuples_.erase(std::unique(tuples_.begin(), tuples_.end(),
                            [](const Tuple& a, const Tuple& b) {
                              return a.Equals(b);
                            }),
                tuples_.end());
  metrics_.distinct_rows = tuples_.size();
  return Status::OK();
}

Result<std::optional<Row>> SortDedupOp::NextImpl() {
  if (pos_ == tuples_.size()) return std::optional<Row>();
  return std::optional<Row>(Row{std::move(tuples_[pos_++]), 1});
}

void SortDedupOp::CloseImpl() {
  tuples_.clear();
  tuples_.shrink_to_fit();
}

// --- UnionAllOp. ---

UnionAllOp::UnionAllOp(PhysOpPtr left, PhysOpPtr right)
    : left_(std::move(left)), right_(std::move(right)) {
  MRA_CHECK(left_->schema().CompatibleWith(right_->schema()))
      << "UnionAll over incompatible schemas";
}

Status UnionAllOp::OpenImpl() {
  on_right_ = false;
  MRA_RETURN_IF_ERROR(left_->Open());
  return right_->Open();
}

Result<std::optional<Row>> UnionAllOp::NextImpl() {
  if (!on_right_) {
    MRA_ASSIGN_OR_RETURN(std::optional<Row> row, left_->Next());
    if (row.has_value()) return row;
    on_right_ = true;
  }
  return right_->Next();
}

Status UnionAllOp::NextBatchImpl(RowBatch& out) {
  // ⊎ forwards whole child batches: per-tuple counts add up across
  // batches by the bag-stream convention, so no merging is needed.
  if (!on_right_) {
    MRA_RETURN_IF_ERROR(left_->NextBatch(out));
    if (!out.empty()) return Status::OK();
    on_right_ = true;
  }
  return right_->NextBatch(out);
}

void UnionAllOp::CloseImpl() {
  left_->Close();
  right_->Close();
}

// --- DifferenceOp. ---

DifferenceOp::DifferenceOp(PhysOpPtr left, PhysOpPtr right)
    : left_(std::move(left)), right_(std::move(right)) {
  MRA_CHECK(left_->schema().CompatibleWith(right_->schema()))
      << "Difference over incompatible schemas";
}

Status DifferenceOp::OpenImpl() {
  // Both sides materialise; charge each against the budget as it lands,
  // then settle on the surviving result_ footprint (the temporaries free
  // at scope exit).  The children's own operators charge their scratch
  // memory themselves — this accounts for the copies held here.
  MRA_ASSIGN_OR_RETURN(Relation lhs, ExecuteToRelation(*left_));
  MRA_RETURN_IF_ERROR(ChargeMemTo(ApproxRelationBytes(lhs)));
  MRA_ASSIGN_OR_RETURN(Relation rhs, ExecuteToRelation(*right_));
  MRA_RETURN_IF_ERROR(
      ChargeMemTo(ApproxRelationBytes(lhs) + ApproxRelationBytes(rhs)));
  result_ = Relation(lhs.schema());
  for (const auto& [tuple, count] : lhs) {
    uint64_t other = rhs.Multiplicity(tuple);
    if (count > other) result_.InsertUnchecked(tuple, count - other);
  }
  metrics_.distinct_rows = result_.distinct_size();
  it_ = result_.begin();
  return ChargeMemTo(ApproxRelationBytes(result_));
}

Result<std::optional<Row>> DifferenceOp::NextImpl() {
  if (it_ == result_.end()) return std::optional<Row>();
  Row row{it_->first, it_->second};
  ++it_;
  return std::optional<Row>(std::move(row));
}

void DifferenceOp::CloseImpl() { result_.Clear(); }

// --- IntersectOp. ---

IntersectOp::IntersectOp(PhysOpPtr left, PhysOpPtr right)
    : left_(std::move(left)), right_(std::move(right)) {
  MRA_CHECK(left_->schema().CompatibleWith(right_->schema()))
      << "Intersect over incompatible schemas";
}

Status IntersectOp::OpenImpl() {
  // Same accounting shape as DifferenceOp above.
  MRA_ASSIGN_OR_RETURN(Relation lhs, ExecuteToRelation(*left_));
  MRA_RETURN_IF_ERROR(ChargeMemTo(ApproxRelationBytes(lhs)));
  MRA_ASSIGN_OR_RETURN(Relation rhs, ExecuteToRelation(*right_));
  MRA_RETURN_IF_ERROR(
      ChargeMemTo(ApproxRelationBytes(lhs) + ApproxRelationBytes(rhs)));
  result_ = Relation(lhs.schema());
  for (const auto& [tuple, count] : lhs) {
    uint64_t m = std::min(count, rhs.Multiplicity(tuple));
    if (m > 0) result_.InsertUnchecked(tuple, m);
  }
  metrics_.distinct_rows = result_.distinct_size();
  it_ = result_.begin();
  return ChargeMemTo(ApproxRelationBytes(result_));
}

Result<std::optional<Row>> IntersectOp::NextImpl() {
  if (it_ == result_.end()) return std::optional<Row>();
  Row row{it_->first, it_->second};
  ++it_;
  return std::optional<Row>(std::move(row));
}

void IntersectOp::CloseImpl() { result_.Clear(); }

// --- NestedLoopJoinOp. ---

NestedLoopJoinOp::NestedLoopJoinOp(ExprPtr condition_or_null, PhysOpPtr left,
                                   PhysOpPtr right)
    : condition_(std::move(condition_or_null)),
      schema_(left->schema().Concat(right->schema())),
      left_(std::move(left)),
      right_(std::move(right)) {}

Status NestedLoopJoinOp::OpenImpl() {
  right_rows_.clear();
  MRA_RETURN_IF_ERROR(right_->Open());
  uint64_t materialized_bytes = 0;
  while (true) {
    MRA_ASSIGN_OR_RETURN(std::optional<Row> row, right_->Next());
    if (!row.has_value()) break;
    materialized_bytes += ApproxTupleBytes(row->tuple) + sizeof(Row);
    right_rows_.push_back(std::move(*row));
    MRA_RETURN_IF_ERROR(ChargeMemTo(materialized_bytes));
  }
  right_->Close();
  current_left_.reset();
  right_pos_ = 0;
  return left_->Open();
}

Result<std::optional<Row>> NestedLoopJoinOp::NextImpl() {
  while (true) {
    if (!current_left_.has_value()) {
      MRA_ASSIGN_OR_RETURN(current_left_, left_->Next());
      if (!current_left_.has_value()) return std::optional<Row>();
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_.size()) {
      const Row& rhs = right_rows_[right_pos_++];
      Tuple combined = current_left_->tuple.Concat(rhs.tuple);
      if (condition_ != nullptr) {
        MRA_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*condition_, combined));
        if (!keep) continue;
      }
      return std::optional<Row>(
          Row{std::move(combined), current_left_->count * rhs.count});
    }
    current_left_.reset();
  }
}

void NestedLoopJoinOp::CloseImpl() {
  right_rows_.clear();
  left_->Close();
}

// --- HashJoinOp. ---

HashJoinOp::HashJoinOp(std::vector<size_t> left_keys,
                       std::vector<size_t> right_keys,
                       ExprPtr residual_or_null, PhysOpPtr left,
                       PhysOpPtr right)
    : left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual_or_null)),
      schema_(left->schema().Concat(right->schema())),
      left_(std::move(left)),
      right_(std::move(right)) {
  MRA_CHECK_EQ(left_keys_.size(), right_keys_.size());
  MRA_CHECK(!left_keys_.empty()) << "HashJoin requires at least one key pair";
}

Status HashJoinOp::OpenImpl() {
  // Build phase: drain the right child into the recycled arena.  Rows with
  // the same key are chained through `next_` off the key's `heads_` entry,
  // newest first — chain order only permutes output order, which the bag
  // stream convention does not observe.
  index_.Reset();
  heads_.clear();
  build_size_ = 0;
  probe_batch_.Clear();
  probe_pos_ = 0;
  current_left_.reset();
  chain_ = kNone;

  MRA_RETURN_IF_ERROR(right_->Open());
  auto footprint = [this] {
    return index_.ApproxBytes() + heads_.capacity() * sizeof(size_t) +
           next_.capacity() * sizeof(size_t) +
           build_rows_.capacity() * sizeof(Row);
  };
  RowBatch batch;
  while (true) {
    MRA_RETURN_IF_ERROR(right_->NextBatch(batch));
    if (batch.empty()) break;
    for (Row& row : batch) {
      bool inserted = false;
      size_t id = index_.InsertKey(row.tuple, right_keys_, &inserted);
      if (inserted) heads_.push_back(kNone);
      if (build_size_ == build_rows_.size()) {
        build_rows_.emplace_back();
        next_.emplace_back();
      }
      // Copy-assign into the (possibly parked) slot so its buffers recycle.
      build_rows_[build_size_].tuple = row.tuple;
      build_rows_[build_size_].count = row.count;
      next_[build_size_] = heads_[id];
      heads_[id] = build_size_;
      ++build_size_;
    }
    // Per-batch: budget check plus live hash_bytes / hash.peak_bytes so
    // `\top` sees the build while it grows.
    MRA_RETURN_IF_ERROR(NoteHashFootprint(footprint()));
  }
  right_->Close();

  metrics_.build_rows = build_size_;
  metrics_.peak_hash_entries = index_.size();
  MRA_RETURN_IF_ERROR(NoteHashFootprint(footprint()));
  return left_->Open();
}

Result<bool> HashJoinOp::EmitMatch(const Row& probe, size_t match,
                                   RowBatch& out) {
  Row& slot = out.AppendSlot();
  slot.tuple.AssignConcat(probe.tuple, build_rows_[match].tuple);
  slot.count = probe.count * build_rows_[match].count;
  if (residual_ != nullptr) {
    MRA_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*residual_, slot.tuple));
    if (!keep) {
      out.Truncate(out.size() - 1);
      return false;
    }
  }
  return true;
}

Result<std::optional<Row>> HashJoinOp::NextImpl() {
  while (true) {
    if (chain_ == kNone) {
      MRA_ASSIGN_OR_RETURN(current_left_, left_->Next());
      if (!current_left_.has_value()) return std::optional<Row>();
      ++metrics_.probe_rows;
      size_t id = index_.FindKey(current_left_->tuple, left_keys_);
      if (id == HashKeyIndex::kNotFound) continue;
      chain_ = heads_[id];
      if (chain_ == kNone) continue;
    }
    const Row& rhs = build_rows_[chain_];
    chain_ = next_[chain_];
    Tuple combined = current_left_->tuple.Concat(rhs.tuple);
    if (residual_ != nullptr) {
      MRA_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*residual_, combined));
      if (!keep) continue;
    }
    return std::optional<Row>(
        Row{std::move(combined), current_left_->count * rhs.count});
  }
}

Status HashJoinOp::NextBatchImpl(RowBatch& out) {
  while (!out.full()) {
    if (chain_ == kNone) {
      if (probe_pos_ == probe_batch_.size()) {
        MRA_RETURN_IF_ERROR(left_->NextBatch(probe_batch_));
        probe_pos_ = 0;
        if (probe_batch_.empty()) return Status::OK();
      }
      ++metrics_.probe_rows;
      size_t id = index_.FindKey(probe_batch_[probe_pos_].tuple, left_keys_);
      if (id == HashKeyIndex::kNotFound || heads_[id] == kNone) {
        ++probe_pos_;
        continue;
      }
      chain_ = heads_[id];
    }
    MRA_ASSIGN_OR_RETURN(bool emitted,
                         EmitMatch(probe_batch_[probe_pos_], chain_, out));
    (void)emitted;
    chain_ = next_[chain_];
    if (chain_ == kNone) ++probe_pos_;
  }
  return Status::OK();
}

void HashJoinOp::CloseImpl() {
  HashBuildRowsCounter()->Inc(metrics_.build_rows);
  HashProbeRowsCounter()->Inc(metrics_.probe_rows);
  NoteHashPeakBytes(metrics_.hash_bytes);
  index_.Reset();
  build_size_ = 0;
  probe_batch_.Clear();
  probe_pos_ = 0;
  current_left_.reset();
  chain_ = kNone;
  left_->Close();
}

// --- ClosureOp. ---

ClosureOp::ClosureOp(PhysOpPtr child) : child_(std::move(child)) {}

Status ClosureOp::OpenImpl() {
  MRA_ASSIGN_OR_RETURN(Relation input, ExecuteToRelation(*child_));
  MRA_RETURN_IF_ERROR(ChargeMemTo(ApproxRelationBytes(input)));
  MRA_ASSIGN_OR_RETURN(result_, ops::TransitiveClosure(input));
  metrics_.distinct_rows = result_.distinct_size();
  it_ = result_.begin();
  // The closure can be much larger than its input (paths vs. edges);
  // settle the charge on what is actually held.
  return ChargeMemTo(ApproxRelationBytes(result_));
}

Result<std::optional<Row>> ClosureOp::NextImpl() {
  if (it_ == result_.end()) return std::optional<Row>();
  Row row{it_->first, it_->second};
  ++it_;
  return std::optional<Row>(std::move(row));
}

void ClosureOp::CloseImpl() { result_.Clear(); }

// --- SubplanCacheOp. ---

SubplanCacheOp::SubplanCacheOp(std::shared_ptr<SubplanState> state, bool owner)
    : state_(std::move(state)), owner_(owner) {
  MRA_CHECK(state_ != nullptr && state_->source != nullptr);
}

Status SubplanCacheOp::OpenImpl() {
  if (!state_->materialized) {
    MRA_ASSIGN_OR_RETURN(state_->cached, ExecuteToRelation(*state_->source));
    state_->materialized = true;
    // The materialising consumer carries the cache's budget charge; reuse
    // sites read it for free (matching how EXPLAIN renders it once).
    MRA_RETURN_IF_ERROR(ChargeMemTo(ApproxRelationBytes(state_->cached)));
  }
  metrics_.distinct_rows = state_->cached.distinct_size();
  it_ = state_->cached.begin();
  return Status::OK();
}

Result<std::optional<Row>> SubplanCacheOp::NextImpl() {
  if (it_ == state_->cached.end()) return std::optional<Row>();
  Row row{it_->first, it_->second};
  ++it_;
  return std::optional<Row>(std::move(row));
}

Status SubplanCacheOp::NextBatchImpl(RowBatch& out) {
  for (; it_ != state_->cached.end() && !out.full(); ++it_) {
    Row& slot = out.AppendSlot();
    slot.tuple = it_->first;
    slot.count = it_->second;
  }
  return Status::OK();
}

void SubplanCacheOp::CloseImpl() {}

const RelationSchema& SubplanCacheOp::schema() const {
  return state_->source->schema();
}

std::vector<const PhysicalOperator*> SubplanCacheOp::children() const {
  // Only the owning consumer renders the shared subtree; reuse sites are
  // leaves, so EXPLAIN shows the subplan once.
  if (owner_) return {state_->source.get()};
  return {};
}

// --- HashGroupByOp. ---

HashGroupByOp::HashGroupByOp(std::vector<size_t> keys,
                             std::vector<AggSpec> aggs,
                             RelationSchema output_schema, PhysOpPtr child)
    : keys_(std::move(keys)),
      aggs_(std::move(aggs)),
      schema_(std::move(output_schema)),
      child_(std::move(child)) {}

Status HashGroupByOp::OpenImpl() {
  // Aggregation phase: drain the child, folding every row into its group's
  // accumulators.  InsertKey assigns dense ids in first-occurrence order,
  // so the flat accumulator array grows strictly at the tail and
  // accs_[id * aggs_.size() + i] addresses group id's i-th aggregate.
  const RelationSchema& in_schema = child_->schema();
  index_.Reset();
  accs_.clear();
  emit_pos_ = 0;
  auto append_accumulators = [&] {
    for (const AggSpec& agg : aggs_) {
      accs_.emplace_back(agg.kind, in_schema.TypeOf(agg.attr));
    }
  };

  MRA_RETURN_IF_ERROR(child_->Open());
  auto footprint = [this] {
    return index_.ApproxBytes() + accs_.capacity() * sizeof(AggAccumulator);
  };
  RowBatch batch;
  while (true) {
    MRA_RETURN_IF_ERROR(child_->NextBatch(batch));
    if (batch.empty()) break;
    metrics_.build_rows += batch.size();
    for (const Row& row : batch) {
      bool inserted = false;
      size_t id = index_.InsertKey(row.tuple, keys_, &inserted);
      if (inserted) append_accumulators();
      for (size_t i = 0; i < aggs_.size(); ++i) {
        accs_[id * aggs_.size() + i].Add(row.tuple.at(aggs_[i].attr),
                                         row.count);
      }
    }
    // Per-batch: budget check plus live hash_bytes / hash.peak_bytes.
    MRA_RETURN_IF_ERROR(NoteHashFootprint(footprint()));
  }
  child_->Close();

  // Def 3.3: Γ over an empty relation with no grouping attributes still
  // denotes the one global group (whose AVG/MIN/MAX are then undefined).
  if (keys_.empty() && index_.empty()) {
    bool inserted = false;
    index_.InsertKey(Tuple{}, keys_, &inserted);
    append_accumulators();
  }
  metrics_.peak_hash_entries = index_.size();
  metrics_.distinct_rows = index_.size();
  return NoteHashFootprint(footprint());
}

Result<Row> HashGroupByOp::EmitGroup(size_t id) {
  // Finish() is where Def 3.3's partiality surfaces: AVG/MIN/MAX over an
  // empty group return kUndefined, which propagates out of Next/NextBatch.
  std::vector<Value> values = index_.key(id).values();
  values.reserve(keys_.size() + aggs_.size());
  for (size_t i = 0; i < aggs_.size(); ++i) {
    MRA_ASSIGN_OR_RETURN(Value v, accs_[id * aggs_.size() + i].Finish());
    values.push_back(std::move(v));
  }
  return Row{Tuple(std::move(values)), 1};
}

Result<std::optional<Row>> HashGroupByOp::NextImpl() {
  if (emit_pos_ == index_.size()) return std::optional<Row>();
  MRA_ASSIGN_OR_RETURN(Row row, EmitGroup(emit_pos_));
  ++emit_pos_;
  return std::optional<Row>(std::move(row));
}

Status HashGroupByOp::NextBatchImpl(RowBatch& out) {
  while (!out.full() && emit_pos_ < index_.size()) {
    MRA_ASSIGN_OR_RETURN(Row row, EmitGroup(emit_pos_));
    ++emit_pos_;
    Row& slot = out.AppendSlot();
    slot.tuple = std::move(row.tuple);
    slot.count = row.count;
  }
  return Status::OK();
}

void HashGroupByOp::CloseImpl() {
  HashBuildRowsCounter()->Inc(metrics_.build_rows);
  NoteHashPeakBytes(metrics_.hash_bytes);
  index_.Reset();
  accs_.clear();
  emit_pos_ = 0;
}

// --- Equi-join key extraction. ---

bool ExtractEquiJoinKeys(const ExprPtr& condition,
                         const RelationSchema& combined_schema,
                         size_t left_arity, std::vector<size_t>* left_keys,
                         std::vector<size_t>* right_keys, ExprPtr* residual) {
  left_keys->clear();
  right_keys->clear();
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(condition, &conjuncts);
  std::vector<ExprPtr> rest;
  for (const ExprPtr& c : conjuncts) {
    bool is_key = false;
    if (c->kind() == ExprKind::kBinary) {
      const auto& b = static_cast<const BinaryExpr&>(*c);
      if (b.op() == BinaryOp::kEq &&
          b.lhs()->kind() == ExprKind::kAttrRef &&
          b.rhs()->kind() == ExprKind::kAttrRef) {
        size_t i = static_cast<const AttrRefExpr&>(*b.lhs()).index();
        size_t j = static_cast<const AttrRefExpr&>(*b.rhs()).index();
        bool same_domain = i < combined_schema.arity() &&
                           j < combined_schema.arity() &&
                           combined_schema.TypeOf(i) == combined_schema.TypeOf(j);
        if (!same_domain) {
          // Mixed-domain equality (e.g. int vs decimal) promotes before
          // comparing; hash-key equality would not, so keep it residual.
        } else if (i < left_arity && j >= left_arity) {
          left_keys->push_back(i);
          right_keys->push_back(j - left_arity);
          is_key = true;
        } else if (j < left_arity && i >= left_arity) {
          left_keys->push_back(j);
          right_keys->push_back(i - left_arity);
          is_key = true;
        }
      }
    }
    if (!is_key) rest.push_back(c);
  }
  *residual = rest.empty() ? nullptr : CombineConjuncts(rest);
  return !left_keys->empty();
}

}  // namespace exec
}  // namespace mra
