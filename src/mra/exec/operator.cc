#include "mra/exec/operator.h"

#include <sstream>

#include "mra/algebra/closure.h"
#include "mra/expr/eval.h"

namespace mra {
namespace exec {

namespace {

void RenderPhysical(const PhysicalOperator& op, int depth,
                    std::ostream& out) {
  for (int i = 0; i < depth; ++i) out << "  ";
  out << op.name() << "\n";
  for (const PhysicalOperator* child : op.children()) {
    RenderPhysical(*child, depth + 1, out);
  }
}

}  // namespace

std::string PhysicalOperator::ToString() const {
  std::ostringstream out;
  RenderPhysical(*this, 0, out);
  return out.str();
}

Result<Relation> ExecuteToRelation(PhysicalOperator& op) {
  MRA_RETURN_IF_ERROR(op.Open());
  Relation out(op.schema());
  while (true) {
    MRA_ASSIGN_OR_RETURN(std::optional<Row> row, op.Next());
    if (!row.has_value()) break;
    out.InsertUnchecked(std::move(row->tuple), row->count);
  }
  op.Close();
  return out;
}

// --- ScanOp. ---

ScanOp::ScanOp(const Relation* relation) : relation_(relation) {
  MRA_CHECK(relation != nullptr);
}

Status ScanOp::Open() {
  it_ = relation_->begin();
  open_ = true;
  return Status::OK();
}

Result<std::optional<Row>> ScanOp::Next() {
  MRA_CHECK(open_) << "Next() before Open()";
  if (it_ == relation_->end()) return std::optional<Row>();
  Row row{it_->first, it_->second};
  ++it_;
  return std::optional<Row>(std::move(row));
}

void ScanOp::Close() { open_ = false; }

const RelationSchema& ScanOp::schema() const { return relation_->schema(); }

// --- ConstScanOp. ---

ConstScanOp::ConstScanOp(Relation relation) : relation_(std::move(relation)) {}

Status ConstScanOp::Open() {
  it_ = relation_.begin();
  open_ = true;
  return Status::OK();
}

Result<std::optional<Row>> ConstScanOp::Next() {
  MRA_CHECK(open_) << "Next() before Open()";
  if (it_ == relation_.end()) return std::optional<Row>();
  Row row{it_->first, it_->second};
  ++it_;
  return std::optional<Row>(std::move(row));
}

void ConstScanOp::Close() { open_ = false; }

const RelationSchema& ConstScanOp::schema() const {
  return relation_.schema();
}

// --- FilterOp. ---

FilterOp::FilterOp(ExprPtr condition, PhysOpPtr child)
    : condition_(std::move(condition)), child_(std::move(child)) {}

Status FilterOp::Open() { return child_->Open(); }

Result<std::optional<Row>> FilterOp::Next() {
  while (true) {
    MRA_ASSIGN_OR_RETURN(std::optional<Row> row, child_->Next());
    if (!row.has_value()) return row;
    MRA_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*condition_, row->tuple));
    if (keep) return row;
  }
}

void FilterOp::Close() { child_->Close(); }

// --- ComputeOp. ---

ComputeOp::ComputeOp(std::vector<ExprPtr> exprs, RelationSchema output_schema,
                     PhysOpPtr child)
    : exprs_(std::move(exprs)),
      schema_(std::move(output_schema)),
      child_(std::move(child)) {}

Status ComputeOp::Open() { return child_->Open(); }

Result<std::optional<Row>> ComputeOp::Next() {
  MRA_ASSIGN_OR_RETURN(std::optional<Row> row, child_->Next());
  if (!row.has_value()) return row;
  MRA_ASSIGN_OR_RETURN(Tuple projected, ProjectTuple(exprs_, row->tuple));
  return std::optional<Row>(Row{std::move(projected), row->count});
}

void ComputeOp::Close() { child_->Close(); }

// --- DedupOp. ---

DedupOp::DedupOp(PhysOpPtr child) : child_(std::move(child)) {}

Status DedupOp::Open() {
  seen_.clear();
  return child_->Open();
}

Result<std::optional<Row>> DedupOp::Next() {
  while (true) {
    MRA_ASSIGN_OR_RETURN(std::optional<Row> row, child_->Next());
    if (!row.has_value()) return row;
    if (seen_.insert(row->tuple).second) {
      return std::optional<Row>(Row{std::move(row->tuple), 1});
    }
  }
}

void DedupOp::Close() {
  seen_.clear();
  child_->Close();
}

// --- UnionAllOp. ---

UnionAllOp::UnionAllOp(PhysOpPtr left, PhysOpPtr right)
    : left_(std::move(left)), right_(std::move(right)) {
  MRA_CHECK(left_->schema().CompatibleWith(right_->schema()))
      << "UnionAll over incompatible schemas";
}

Status UnionAllOp::Open() {
  on_right_ = false;
  MRA_RETURN_IF_ERROR(left_->Open());
  return right_->Open();
}

Result<std::optional<Row>> UnionAllOp::Next() {
  if (!on_right_) {
    MRA_ASSIGN_OR_RETURN(std::optional<Row> row, left_->Next());
    if (row.has_value()) return row;
    on_right_ = true;
  }
  return right_->Next();
}

void UnionAllOp::Close() {
  left_->Close();
  right_->Close();
}

// --- DifferenceOp. ---

DifferenceOp::DifferenceOp(PhysOpPtr left, PhysOpPtr right)
    : left_(std::move(left)), right_(std::move(right)) {
  MRA_CHECK(left_->schema().CompatibleWith(right_->schema()))
      << "Difference over incompatible schemas";
}

Status DifferenceOp::Open() {
  MRA_ASSIGN_OR_RETURN(Relation lhs, ExecuteToRelation(*left_));
  MRA_ASSIGN_OR_RETURN(Relation rhs, ExecuteToRelation(*right_));
  result_ = Relation(lhs.schema());
  for (const auto& [tuple, count] : lhs) {
    uint64_t other = rhs.Multiplicity(tuple);
    if (count > other) result_.InsertUnchecked(tuple, count - other);
  }
  it_ = result_.begin();
  open_ = true;
  return Status::OK();
}

Result<std::optional<Row>> DifferenceOp::Next() {
  MRA_CHECK(open_) << "Next() before Open()";
  if (it_ == result_.end()) return std::optional<Row>();
  Row row{it_->first, it_->second};
  ++it_;
  return std::optional<Row>(std::move(row));
}

void DifferenceOp::Close() {
  result_.Clear();
  open_ = false;
}

// --- IntersectOp. ---

IntersectOp::IntersectOp(PhysOpPtr left, PhysOpPtr right)
    : left_(std::move(left)), right_(std::move(right)) {
  MRA_CHECK(left_->schema().CompatibleWith(right_->schema()))
      << "Intersect over incompatible schemas";
}

Status IntersectOp::Open() {
  MRA_ASSIGN_OR_RETURN(Relation lhs, ExecuteToRelation(*left_));
  MRA_ASSIGN_OR_RETURN(Relation rhs, ExecuteToRelation(*right_));
  result_ = Relation(lhs.schema());
  for (const auto& [tuple, count] : lhs) {
    uint64_t m = std::min(count, rhs.Multiplicity(tuple));
    if (m > 0) result_.InsertUnchecked(tuple, m);
  }
  it_ = result_.begin();
  open_ = true;
  return Status::OK();
}

Result<std::optional<Row>> IntersectOp::Next() {
  MRA_CHECK(open_) << "Next() before Open()";
  if (it_ == result_.end()) return std::optional<Row>();
  Row row{it_->first, it_->second};
  ++it_;
  return std::optional<Row>(std::move(row));
}

void IntersectOp::Close() {
  result_.Clear();
  open_ = false;
}

// --- NestedLoopJoinOp. ---

NestedLoopJoinOp::NestedLoopJoinOp(ExprPtr condition_or_null, PhysOpPtr left,
                                   PhysOpPtr right)
    : condition_(std::move(condition_or_null)),
      schema_(left->schema().Concat(right->schema())),
      left_(std::move(left)),
      right_(std::move(right)) {}

Status NestedLoopJoinOp::Open() {
  right_rows_.clear();
  MRA_RETURN_IF_ERROR(right_->Open());
  while (true) {
    MRA_ASSIGN_OR_RETURN(std::optional<Row> row, right_->Next());
    if (!row.has_value()) break;
    right_rows_.push_back(std::move(*row));
  }
  right_->Close();
  current_left_.reset();
  right_pos_ = 0;
  return left_->Open();
}

Result<std::optional<Row>> NestedLoopJoinOp::Next() {
  while (true) {
    if (!current_left_.has_value()) {
      MRA_ASSIGN_OR_RETURN(current_left_, left_->Next());
      if (!current_left_.has_value()) return std::optional<Row>();
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_.size()) {
      const Row& rhs = right_rows_[right_pos_++];
      Tuple combined = current_left_->tuple.Concat(rhs.tuple);
      if (condition_ != nullptr) {
        MRA_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*condition_, combined));
        if (!keep) continue;
      }
      return std::optional<Row>(
          Row{std::move(combined), current_left_->count * rhs.count});
    }
    current_left_.reset();
  }
}

void NestedLoopJoinOp::Close() {
  right_rows_.clear();
  left_->Close();
}

// --- HashJoinOp. ---

HashJoinOp::HashJoinOp(std::vector<size_t> left_keys,
                       std::vector<size_t> right_keys,
                       ExprPtr residual_or_null, PhysOpPtr left,
                       PhysOpPtr right)
    : left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual_or_null)),
      schema_(left->schema().Concat(right->schema())),
      left_(std::move(left)),
      right_(std::move(right)) {
  MRA_CHECK_EQ(left_keys_.size(), right_keys_.size());
  MRA_CHECK(!left_keys_.empty()) << "HashJoin requires at least one key pair";
}

Status HashJoinOp::Open() {
  table_.clear();
  MRA_RETURN_IF_ERROR(right_->Open());
  while (true) {
    MRA_ASSIGN_OR_RETURN(std::optional<Row> row, right_->Next());
    if (!row.has_value()) break;
    Tuple key = row->tuple.Project(right_keys_);
    table_[std::move(key)].push_back(std::move(*row));
  }
  right_->Close();
  current_left_.reset();
  matches_ = nullptr;
  match_pos_ = 0;
  return left_->Open();
}

Result<std::optional<Row>> HashJoinOp::Next() {
  while (true) {
    if (!current_left_.has_value()) {
      MRA_ASSIGN_OR_RETURN(current_left_, left_->Next());
      if (!current_left_.has_value()) return std::optional<Row>();
      Tuple key = current_left_->tuple.Project(left_keys_);
      auto it = table_.find(key);
      if (it == table_.end()) {
        current_left_.reset();
        continue;
      }
      matches_ = &it->second;
      match_pos_ = 0;
    }
    while (match_pos_ < matches_->size()) {
      const Row& rhs = (*matches_)[match_pos_++];
      Tuple combined = current_left_->tuple.Concat(rhs.tuple);
      if (residual_ != nullptr) {
        MRA_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*residual_, combined));
        if (!keep) continue;
      }
      return std::optional<Row>(
          Row{std::move(combined), current_left_->count * rhs.count});
    }
    current_left_.reset();
  }
}

void HashJoinOp::Close() {
  table_.clear();
  left_->Close();
}

// --- ClosureOp. ---

ClosureOp::ClosureOp(PhysOpPtr child) : child_(std::move(child)) {}

Status ClosureOp::Open() {
  MRA_ASSIGN_OR_RETURN(Relation input, ExecuteToRelation(*child_));
  MRA_ASSIGN_OR_RETURN(result_, ops::TransitiveClosure(input));
  it_ = result_.begin();
  open_ = true;
  return Status::OK();
}

Result<std::optional<Row>> ClosureOp::Next() {
  MRA_CHECK(open_) << "Next() before Open()";
  if (it_ == result_.end()) return std::optional<Row>();
  Row row{it_->first, it_->second};
  ++it_;
  return std::optional<Row>(std::move(row));
}

void ClosureOp::Close() {
  result_.Clear();
  open_ = false;
}

// --- HashGroupByOp. ---

HashGroupByOp::HashGroupByOp(std::vector<size_t> keys,
                             std::vector<AggSpec> aggs,
                             RelationSchema output_schema, PhysOpPtr child)
    : keys_(std::move(keys)),
      aggs_(std::move(aggs)),
      schema_(std::move(output_schema)),
      child_(std::move(child)) {}

Status HashGroupByOp::Open() {
  const RelationSchema& in_schema = child_->schema();
  auto make_accumulators = [&] {
    std::vector<AggAccumulator> accs;
    accs.reserve(aggs_.size());
    for (const AggSpec& agg : aggs_) {
      accs.emplace_back(agg.kind, in_schema.TypeOf(agg.attr));
    }
    return accs;
  };

  std::unordered_map<Tuple, std::vector<AggAccumulator>, TupleHash, TupleEq>
      groups;
  MRA_RETURN_IF_ERROR(child_->Open());
  while (true) {
    MRA_ASSIGN_OR_RETURN(std::optional<Row> row, child_->Next());
    if (!row.has_value()) break;
    Tuple key = row->tuple.Project(keys_);
    auto [it, inserted] = groups.try_emplace(std::move(key));
    if (inserted) it->second = make_accumulators();
    for (size_t i = 0; i < aggs_.size(); ++i) {
      it->second[i].Add(row->tuple.at(aggs_[i].attr), row->count);
    }
  }
  child_->Close();

  if (keys_.empty() && groups.empty()) {
    groups.try_emplace(Tuple{}, make_accumulators());
  }

  result_ = Relation(schema_);
  for (const auto& [key, accs] : groups) {
    std::vector<Value> values = key.values();
    for (const AggAccumulator& acc : accs) {
      MRA_ASSIGN_OR_RETURN(Value v, acc.Finish());
      values.push_back(std::move(v));
    }
    result_.InsertUnchecked(Tuple(std::move(values)), 1);
  }
  it_ = result_.begin();
  open_ = true;
  return Status::OK();
}

Result<std::optional<Row>> HashGroupByOp::Next() {
  MRA_CHECK(open_) << "Next() before Open()";
  if (it_ == result_.end()) return std::optional<Row>();
  Row row{it_->first, it_->second};
  ++it_;
  return std::optional<Row>(std::move(row));
}

void HashGroupByOp::Close() {
  result_.Clear();
  open_ = false;
}

// --- Equi-join key extraction. ---

bool ExtractEquiJoinKeys(const ExprPtr& condition,
                         const RelationSchema& combined_schema,
                         size_t left_arity, std::vector<size_t>* left_keys,
                         std::vector<size_t>* right_keys, ExprPtr* residual) {
  left_keys->clear();
  right_keys->clear();
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(condition, &conjuncts);
  std::vector<ExprPtr> rest;
  for (const ExprPtr& c : conjuncts) {
    bool is_key = false;
    if (c->kind() == ExprKind::kBinary) {
      const auto& b = static_cast<const BinaryExpr&>(*c);
      if (b.op() == BinaryOp::kEq &&
          b.lhs()->kind() == ExprKind::kAttrRef &&
          b.rhs()->kind() == ExprKind::kAttrRef) {
        size_t i = static_cast<const AttrRefExpr&>(*b.lhs()).index();
        size_t j = static_cast<const AttrRefExpr&>(*b.rhs()).index();
        bool same_domain = i < combined_schema.arity() &&
                           j < combined_schema.arity() &&
                           combined_schema.TypeOf(i) == combined_schema.TypeOf(j);
        if (!same_domain) {
          // Mixed-domain equality (e.g. int vs decimal) promotes before
          // comparing; hash-key equality would not, so keep it residual.
        } else if (i < left_arity && j >= left_arity) {
          left_keys->push_back(i);
          right_keys->push_back(j - left_arity);
          is_key = true;
        } else if (j < left_arity && i >= left_arity) {
          left_keys->push_back(j);
          right_keys->push_back(i - left_arity);
          is_key = true;
        }
      }
    }
    if (!is_key) rest.push_back(c);
  }
  *residual = rest.empty() ? nullptr : CombineConjuncts(rest);
  return !left_keys->empty();
}

}  // namespace exec
}  // namespace mra
