// A recycled open-addressing hash index over tuple keys — the shared core
// of the hash-based physical operators: the hash join's build table, hash
// group-by's group table and hash δ's seen-set all reduce to "map the key
// projection of a tuple to a dense id".
//
// Design points:
//  * Keys live in a dense arena (`id` indexes it), the slot array holds
//    only ids — growth rehashes by stored hash, never re-touching key
//    tuples.
//  * Storage is recycled across Open()s the same way RowBatch recycles
//    rows: Reset() zeroes the logical size but parks the key tuples and
//    keeps the slot array, so a reopened operator (or the next query run
//    through a pooled operator tree) rebuilds without reallocating.
//    Inserts AssignProjection into the parked tuples, reusing their value
//    buffers.
//  * Probing hashes the key attributes of the probe row in place
//    (Tuple::HashKey / KeyEquals): the probe path never materialises a key
//    tuple, which is where the hash join's per-row allocation used to go.
//  * ApproxBytes() reports the arena's heap footprint (slot array + key
//    tuples; string payloads counted, allocator slack not) for the
//    operator memory accounting surfaced by EXPLAIN ANALYZE and the
//    `hash.peak_bytes` gauge.

#ifndef MRA_EXEC_HASH_TABLE_H_
#define MRA_EXEC_HASH_TABLE_H_

#include <cstdint>
#include <vector>

#include "mra/core/tuple.h"

namespace mra {
namespace exec {

class HashKeyIndex {
 public:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  /// Number of distinct keys currently held.
  size_t size() const { return num_keys_; }
  bool empty() const { return num_keys_ == 0; }

  /// Logical reset; parked keys keep their tuple storage, the slot array
  /// keeps its capacity.
  void Reset();

  /// Finds the dense id of π_attrs(row), inserting it if absent;
  /// *inserted reports which happened.  Ids are assigned 0, 1, 2, … in
  /// first-occurrence order.
  size_t InsertKey(const Tuple& row, const std::vector<size_t>& attrs,
                   bool* inserted);

  /// Lookup without insertion: the id of π_attrs(row), or kNotFound.
  size_t FindKey(const Tuple& row, const std::vector<size_t>& attrs) const;

  /// The stored key tuple for a dense id in [0, size()).
  const Tuple& key(size_t id) const {
    MRA_CHECK_LT(id, num_keys_);
    return keys_[id];
  }

  /// Approximate heap bytes held by the index (see header comment).
  size_t ApproxBytes() const;

 private:
  void Grow();

  static constexpr size_t kEmpty = static_cast<size_t>(-1);
  static constexpr size_t kInitialSlots = 64;  // Power of two.

  size_t num_keys_ = 0;
  std::vector<Tuple> keys_;       // Dense arena; parked past num_keys_.
  std::vector<size_t> hashes_;    // Stored hash per key id.
  std::vector<size_t> slots_;     // Linear-probed table of ids (kEmpty = free).
  size_t key_bytes_ = 0;          // Approximate bytes of the live keys.
};

}  // namespace exec
}  // namespace mra

#endif  // MRA_EXEC_HASH_TABLE_H_
