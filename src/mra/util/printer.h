// Tabular rendering of relations for examples, the REPL and benchmarks.
//
// Output rows are sorted by display form for determinism only — the algebra
// itself has no order (§5 of the paper explicitly excludes sorting from the
// formalism).

#ifndef MRA_UTIL_PRINTER_H_
#define MRA_UTIL_PRINTER_H_

#include <iosfwd>
#include <string>

#include "mra/core/relation.h"

namespace mra {
namespace util {

struct PrintOptions {
  /// Show a multiplicity column ("#") when any tuple has count > 1.
  bool show_multiplicity = true;
  /// Cap on printed rows (0 = unlimited); a summary line notes elision.
  size_t max_rows = 50;
};

/// Renders `relation` as an aligned ASCII table.
std::string RenderTable(const Relation& relation, PrintOptions options = {});

/// Writes RenderTable output plus a header naming the relation and its
/// cardinalities.
void PrintRelation(std::ostream& out, const Relation& relation,
                   PrintOptions options = {});

}  // namespace util
}  // namespace mra

#endif  // MRA_UTIL_PRINTER_H_
