#include "mra/util/printer.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace mra {
namespace util {

std::string RenderTable(const Relation& relation, PrintOptions options) {
  const RelationSchema& schema = relation.schema();
  auto entries = relation.SortedEntries();

  bool any_dup = false;
  for (const auto& [tuple, count] : entries) any_dup |= (count > 1);
  const bool show_count = options.show_multiplicity && any_dup;

  // Column headers.
  std::vector<std::string> headers;
  for (size_t i = 0; i < schema.arity(); ++i) {
    const Attribute& a = schema.attribute(i);
    headers.push_back(a.name.empty() ? "%" + std::to_string(i + 1) : a.name);
  }
  if (show_count) headers.push_back("#");

  // Cell matrix.
  size_t limit = options.max_rows == 0
                     ? entries.size()
                     : std::min(entries.size(), options.max_rows);
  std::vector<std::vector<std::string>> rows;
  rows.reserve(limit);
  for (size_t r = 0; r < limit; ++r) {
    std::vector<std::string> cells;
    const auto& [tuple, count] = entries[r];
    for (size_t i = 0; i < tuple.arity(); ++i) {
      cells.push_back(tuple.at(i).ToString());
    }
    if (show_count) cells.push_back(std::to_string(count));
    rows.push_back(std::move(cells));
  }

  // Column widths.
  std::vector<size_t> widths(headers.size());
  for (size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      out << " " << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
          << " |";
    }
    out << "\n";
  };
  auto emit_rule = [&] {
    out << "+";
    for (size_t w : widths) out << std::string(w + 2, '-') << "+";
    out << "\n";
  };

  emit_rule();
  emit_row(headers);
  emit_rule();
  for (const auto& row : rows) emit_row(row);
  emit_rule();
  if (limit < entries.size()) {
    out << "(" << entries.size() - limit << " more distinct tuples elided)\n";
  }
  return out.str();
}

void PrintRelation(std::ostream& out, const Relation& relation,
                   PrintOptions options) {
  const std::string& name = relation.schema().name();
  out << (name.empty() ? "<result>" : name) << ": " << relation.size()
      << " tuples (" << relation.distinct_size() << " distinct)\n";
  out << RenderTable(relation, options);
}

}  // namespace util
}  // namespace mra
