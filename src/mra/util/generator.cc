#include "mra/util/generator.h"

#include <cmath>

namespace mra {
namespace util {

RelationSchema BeerSchema() {
  return RelationSchema("beer", {{"name", Type::String()},
                                 {"brewery", Type::String()},
                                 {"alcperc", Type::Real()}});
}

RelationSchema BrewerySchema() {
  return RelationSchema("brewery", {{"name", Type::String()},
                                    {"city", Type::String()},
                                    {"country", Type::String()}});
}

Result<BeerDb> MakeBeerDb(const BeerDbOptions& options) {
  // Each rejected shape would otherwise feed an empty range to a random
  // distribution below — undefined behavior, not an empty database.
  if (options.num_breweries == 0) {
    return Status::InvalidArgument("BeerDbOptions.num_breweries must be > 0");
  }
  if (options.num_beer_names == 0) {
    return Status::InvalidArgument(
        "BeerDbOptions.num_beer_names must be > 0");
  }
  if (options.countries.empty()) {
    return Status::InvalidArgument(
        "BeerDbOptions.countries must not be empty");
  }
  if (options.duplicate_factor < 1.0) {
    return Status::InvalidArgument(
        "BeerDbOptions.duplicate_factor must be >= 1 (it is a mean "
        "multiplicity)");
  }
  std::mt19937_64 rng(options.seed);
  BeerDb db{Relation(BeerSchema()), Relation(BrewerySchema())};

  // Breweries: geometric country skew (country[0] most common).
  std::geometric_distribution<size_t> country_dist(0.5);
  std::vector<std::string> brewery_names;
  brewery_names.reserve(options.num_breweries);
  for (size_t i = 0; i < options.num_breweries; ++i) {
    std::string name = "brewery" + std::to_string(i);
    size_t c = std::min(country_dist(rng), options.countries.size() - 1);
    db.brewery.InsertUnchecked(
        Tuple({Value::Str(name), Value::Str("city" + std::to_string(i % 37)),
               Value::Str(options.countries[c])}),
        1);
    brewery_names.push_back(std::move(name));
  }

  // Beers: random name/brewery/alcperc, multiplicity ~ duplicate_factor.
  std::uniform_int_distribution<size_t> name_dist(0,
                                                  options.num_beer_names - 1);
  std::uniform_int_distribution<size_t> brewery_dist(
      0, options.num_breweries - 1);
  std::uniform_real_distribution<double> alc_dist(0.0, 12.0);
  for (size_t i = 0; i < options.num_beers; ++i) {
    uint64_t count = 1;
    if (options.duplicate_factor > 1.0) {
      // Geometric with the requested mean.
      std::geometric_distribution<uint64_t> dup(1.0 /
                                                options.duplicate_factor);
      count = 1 + dup(rng);
    }
    // One-decimal alcohol percentages keep Example 3.2 outputs readable.
    double alc = std::round(alc_dist(rng) * 10.0) / 10.0;
    db.beer.InsertUnchecked(
        Tuple({Value::Str("beer" + std::to_string(name_dist(rng))),
               Value::Str(brewery_names[brewery_dist(rng)]),
               Value::Real(alc)}),
        count);
  }
  return db;
}

Result<Relation> MakeIntRelation(const IntRelationOptions& options) {
  if (options.arity == 0) {
    return Status::InvalidArgument("IntRelationOptions.arity must be > 0");
  }
  if (options.value_range <= 0) {
    return Status::InvalidArgument(
        "IntRelationOptions.value_range must be > 0");
  }
  if (options.max_multiplicity == 0 &&
      options.duplicates != DupDistribution::kNone) {
    return Status::InvalidArgument(
        "IntRelationOptions.max_multiplicity must be > 0 when a duplicate "
        "distribution draws from it");
  }
  std::mt19937_64 rng(options.seed);
  std::vector<Attribute> attrs;
  attrs.reserve(options.arity);
  for (size_t i = 0; i < options.arity; ++i) {
    attrs.push_back({"c" + std::to_string(i + 1), Type::Int()});
  }
  Relation rel(RelationSchema(options.name, std::move(attrs)));

  std::uniform_int_distribution<int64_t> value_dist(0,
                                                    options.value_range - 1);
  for (size_t i = 0; i < options.distinct_tuples; ++i) {
    std::vector<Value> values;
    values.reserve(options.arity);
    for (size_t a = 0; a < options.arity; ++a) {
      values.push_back(Value::Int(value_dist(rng)));
    }
    uint64_t count = 1;
    switch (options.duplicates) {
      case DupDistribution::kNone:
        break;
      case DupDistribution::kUniform:
        count = std::uniform_int_distribution<uint64_t>(
            1, options.max_multiplicity)(rng);
        break;
      case DupDistribution::kZipf: {
        // Inverse-power sampling: multiplicity ~ 1/u, capped.
        double u = std::uniform_real_distribution<double>(
            1.0 / static_cast<double>(options.max_multiplicity), 1.0)(rng);
        count = static_cast<uint64_t>(1.0 / u);
        break;
      }
    }
    rel.InsertUnchecked(Tuple(std::move(values)), count);
  }
  return rel;
}

}  // namespace util
}  // namespace mra
