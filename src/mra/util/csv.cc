#include "mra/util/csv.h"

#include <cstdio>
#include <vector>

namespace mra {
namespace util {

namespace {

// Splits one logical CSV record starting at `pos`; advances pos past the
// record's trailing newline.  Handles quoted fields with embedded commas,
// quotes and newlines.
Result<std::vector<std::string>> ParseRecord(std::string_view csv,
                                             size_t* pos, int* line) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool quoted_field = false;
  size_t i = *pos;
  for (; i < csv.size(); ++i) {
    char c = csv[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < csv.size() && csv[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++*line;
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::ParseError("stray quote in CSV at line " +
                                    std::to_string(*line));
        }
        in_quotes = true;
        quoted_field = true;
        continue;
      case ',':
        fields.push_back(std::move(field));
        field.clear();
        quoted_field = false;
        continue;
      case '\r':
        continue;
      case '\n':
        ++*line;
        ++i;
        goto record_done;
      default:
        field.push_back(c);
        continue;
    }
  }
record_done:
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field at line " +
                              std::to_string(*line));
  }
  (void)quoted_field;
  fields.push_back(std::move(field));
  *pos = i;
  return fields;
}

Result<Value> ParseField(const std::string& field, Type type, int line) {
  auto err = [&](const char* what) {
    return Status::ParseError(std::string("CSV line ") + std::to_string(line) +
                              ": cannot parse '" + field + "' as " + what);
  };
  switch (type.kind()) {
    case TypeKind::kBool:
      if (field == "true" || field == "1") return Value::Bool(true);
      if (field == "false" || field == "0") return Value::Bool(false);
      return err("bool");
    case TypeKind::kInt: {
      try {
        size_t used = 0;
        int64_t v = std::stoll(field, &used);
        if (used != field.size()) return err("int");
        return Value::Int(v);
      } catch (...) {
        return err("int");
      }
    }
    case TypeKind::kReal: {
      try {
        size_t used = 0;
        double v = std::stod(field, &used);
        if (used != field.size()) return err("real");
        return Value::Real(v);
      } catch (...) {
        return err("real");
      }
    }
    case TypeKind::kDecimal: {
      Result<Value> v = Value::DecimalFromString(field);
      if (!v.ok()) return err("decimal");
      return v;
    }
    case TypeKind::kString:
      return Value::Str(field);
    case TypeKind::kDate: {
      Result<Value> v = Value::DateFromString(field);
      if (!v.ok()) return err("date");
      return v;
    }
  }
  return Status::Internal("bad type kind");
}

void AppendCsvField(const std::string& raw, std::string* out) {
  bool needs_quoting = raw.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) {
    *out += raw;
    return;
  }
  *out += '"';
  for (char c : raw) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

std::string ValueToCsvField(const Value& v) {
  // Strings render without the surrounding display quotes.
  if (v.kind() == TypeKind::kString) return v.string_value();
  return v.ToString();
}

}  // namespace

Result<Relation> RelationFromCsv(std::string_view csv,
                                 const RelationSchema& schema,
                                 bool has_header) {
  Relation rel(schema);
  size_t pos = 0;
  int line = 1;
  bool first = true;
  while (pos < csv.size()) {
    int record_line = line;
    MRA_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                         ParseRecord(csv, &pos, &line));
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (first && has_header) {
      first = false;
      continue;
    }
    first = false;
    if (fields.size() != schema.arity()) {
      return Status::ParseError(
          "CSV line " + std::to_string(record_line) + " has " +
          std::to_string(fields.size()) + " fields, schema " +
          schema.ToString() + " expects " + std::to_string(schema.arity()));
    }
    std::vector<Value> values;
    values.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      MRA_ASSIGN_OR_RETURN(Value v,
                           ParseField(fields[i], schema.TypeOf(i), record_line));
      values.push_back(std::move(v));
    }
    rel.InsertUnchecked(Tuple(std::move(values)), 1);
  }
  return rel;
}

std::string RelationToCsv(const Relation& relation) {
  std::string out;
  const RelationSchema& schema = relation.schema();
  for (size_t i = 0; i < schema.arity(); ++i) {
    if (i > 0) out += ',';
    AppendCsvField(schema.attribute(i).name, &out);
  }
  out += '\n';
  for (const auto& [tuple, count] : relation.SortedEntries()) {
    std::string row;
    for (size_t i = 0; i < tuple.arity(); ++i) {
      if (i > 0) row += ',';
      AppendCsvField(ValueToCsvField(tuple.at(i)), &row);
    }
    row += '\n';
    for (uint64_t k = 0; k < count; ++k) out += row;
  }
  return out;
}

Result<Relation> LoadCsvFile(const std::string& path,
                             const RelationSchema& schema, bool has_header) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string contents;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::IoError("cannot read " + path);
  return RelationFromCsv(contents, schema, has_header);
}

Status SaveCsvFile(const std::string& path, const Relation& relation) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot create " + path);
  std::string csv = RelationToCsv(relation);
  bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) return Status::IoError("cannot write " + path);
  return Status::OK();
}

}  // namespace util
}  // namespace mra
