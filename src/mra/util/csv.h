// CSV import/export for relations.  Quoted fields follow RFC 4180 ("" to
// escape a quote inside a quoted field).  Values parse according to the
// target schema's domains; multiplicities are represented by repeated rows.

#ifndef MRA_UTIL_CSV_H_
#define MRA_UTIL_CSV_H_

#include <string>
#include <string_view>

#include "mra/common/result.h"
#include "mra/core/relation.h"

namespace mra {
namespace util {

/// Parses CSV text into a relation of `schema`.  When `has_header` is true
/// the first row is skipped.  Each data row must have exactly
/// schema.arity() fields parsable in the respective domains (dates as
/// YYYY-MM-DD, bools as true/false, decimals as digits[.digits]).
Result<Relation> RelationFromCsv(std::string_view csv,
                                 const RelationSchema& schema,
                                 bool has_header = true);

/// Renders a relation as CSV (header row + one row per tuple occurrence,
/// duplicates repeated, deterministic order).
std::string RelationToCsv(const Relation& relation);

/// File convenience wrappers.
Result<Relation> LoadCsvFile(const std::string& path,
                             const RelationSchema& schema,
                             bool has_header = true);
Status SaveCsvFile(const std::string& path, const Relation& relation);

}  // namespace util
}  // namespace mra

#endif  // MRA_UTIL_CSV_H_
