// Synthetic workload generators.
//
// The paper's running example is a beer/brewery database (Examples 3.1, 3.2
// and 4.1).  BeerDbGenerator scales it up with controlled duplicate factors
// and country skew; MakeIntRelation builds generic integer relations with
// uniform or zipfian multiplicity distributions for the operator-level
// benchmarks.  All generators are deterministically seeded.
//
// Both entry points follow the repo-wide Status/Result convention (see
// DESIGN.md): malformed options — zero counts, empty domains, a
// sub-unity duplicate factor — come back as InvalidArgument instead of
// invoking distributions on empty ranges (undefined behavior).

#ifndef MRA_UTIL_GENERATOR_H_
#define MRA_UTIL_GENERATOR_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "mra/common/result.h"
#include "mra/core/relation.h"

namespace mra {
namespace util {

/// The beer relation schema of the paper: beer(name, brewery, alcperc).
RelationSchema BeerSchema();
/// The brewery relation schema: brewery(name, city, country).
RelationSchema BrewerySchema();

struct BeerDbOptions {
  /// Number of distinct breweries.
  size_t num_breweries = 100;
  /// Number of beer tuples (each names a brewery uniformly at random).
  size_t num_beers = 1000;
  /// Number of distinct beer names — smaller values create duplicates
  /// after projections (Example 3.1's point).
  size_t num_beer_names = 500;
  /// Average multiplicity of each beer tuple (≥ 1): 1 means a set-like
  /// relation, larger means a duplicate-heavy multi-set.
  double duplicate_factor = 1.0;
  /// Countries are drawn from this list with geometric skew.
  std::vector<std::string> countries = {"NL", "BE", "DE", "UK", "US", "CZ"};
  uint64_t seed = 42;
};

struct BeerDb {
  Relation beer;
  Relation brewery;
};

/// Generates a scaled beer database.  InvalidArgument when the options
/// name an empty domain: num_breweries, num_beer_names or countries of
/// zero size, or duplicate_factor < 1.
Result<BeerDb> MakeBeerDb(const BeerDbOptions& options);

/// Multiplicity distribution for generic relations.
enum class DupDistribution {
  kNone,     // every tuple has multiplicity 1
  kUniform,  // multiplicities uniform in [1, max_multiplicity]
  kZipf,     // few tuples very frequent, most rare
};

struct IntRelationOptions {
  /// Number of *distinct* tuples.
  size_t distinct_tuples = 1000;
  /// Attributes per tuple.
  size_t arity = 2;
  /// Attribute values are uniform in [0, value_range).
  int64_t value_range = 1000;
  DupDistribution duplicates = DupDistribution::kNone;
  uint64_t max_multiplicity = 8;
  uint64_t seed = 7;
  std::string name = "r";
};

/// Generates an integer relation with the requested multiplicity shape.
/// InvalidArgument on an empty domain: arity or value_range of zero, or
/// max_multiplicity of zero with a duplicate distribution that draws
/// from it.
Result<Relation> MakeIntRelation(const IntRelationOptions& options);

}  // namespace util
}  // namespace mra

#endif  // MRA_UTIL_GENERATOR_H_
