// Morsel-driven parallel variants of the hash kernels (docs/PARALLELISM.md).
//
// All three operators share one shape: their work happens in OpenImpl as a
// sequence of phases fanned out over a WorkerPool lease, and Next/NextBatch
// then stream an already-materialised result.  A *morsel* is one RowBatch
// pulled from the shared child cursor under a light mutex (relations are
// hash maps — there is no index range to slice, so the cursor itself is the
// work queue).  Partitioning is by key-hash radix: P = next power of two
// >= 4 x lanes partitions (exactly 1 when the lease is serial, so a
// one-lane run skips routing entirely), which makes the partitions
// *disjoint by key* — and under the paper's multi-set semantics that is the
// whole correctness argument:
//
//  * join (Def 3.1): every (probe, build) match pair has equal key hashes,
//    so it meets in exactly one partition; output multiplicities are the
//    per-pair products, and the result is the disjoint ⊎ of the per-lane
//    outputs.
//  * group-by (Def 3.3): the aggregates are multiplicity-weighted sums /
//    extrema, so per-lane partial accumulators over a partition of the
//    input merge additively (AggAccumulator::Merge) into exactly the
//    definitional per-group values.
//  * dedup (δ): the support of a disjoint union is the union of supports;
//    per-lane pre-dedup only collapses duplicates early.
//
// Governance: the shared ExecContext reaches every lane — each lane checks
// it per morsel (and the child's own batch wrapper checks per pull), so a
// cancel/deadline/budget kill lands within one morsel on all cores.  Only
// lane 0 (always the query thread) calls ChargeMemTo; worker lanes publish
// their footprints through relaxed atomics that lane 0 folds between its
// own morsels and at every phase join.
//
// Metrics: per-lane row counters and busy-times merge after each phase
// join into OperatorMetrics — `workers=N` and the summed lane time
// (`cpu=`) appear in EXPLAIN ANALYZE next to the elapsed wall time.

#ifndef MRA_PARALLEL_PARALLEL_OPS_H_
#define MRA_PARALLEL_PARALLEL_OPS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "mra/exec/operator.h"
#include "mra/parallel/worker_pool.h"

namespace mra {
namespace parallel {

/// ⋈ on equi-key conjuncts, partitioned: radix-partition the build side,
/// build one private hash arena per partition in parallel, then probe
/// morsels route by the same radix into read-only partitions.  Output
/// multiplicity is the product of the matched input multiplicities
/// (Definition 3.1), exactly as exec::HashJoinOp.
class ParallelHashJoinOp final : public exec::PhysicalOperator {
 public:
  ParallelHashJoinOp(std::vector<size_t> left_keys,
                     std::vector<size_t> right_keys, ExprPtr residual_or_null,
                     exec::PhysOpPtr left, exec::PhysOpPtr right,
                     size_t workers, size_t morsel_size);

  const RelationSchema& schema() const override { return schema_; }
  std::string_view name() const override { return "ParallelHashJoin"; }
  std::vector<const exec::PhysicalOperator*> children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  Status OpenImpl() override;
  Result<std::optional<exec::Row>> NextImpl() override;
  Status NextBatchImpl(exec::RowBatch& out) override;
  void CloseImpl() override;

 private:
  static constexpr size_t kNone = static_cast<size_t>(-1);

  /// One-lane lease (workers <= 1, or a saturated pool shed): the build
  /// lands in partitions_[0] directly — no staging pass — and the probe
  /// streams from Next/NextBatch exactly like exec::HashJoinOp, so a
  /// one-lane plan pays neither radix routing nor output materialisation
  /// (bench/e20_parallel_scaling pins the overhead under 5%).
  Status OpenSerial();
  Result<std::optional<exec::Row>> StreamNext();
  Status StreamBatch(exec::RowBatch& out);

  /// One radix partition's build arena: the same key-index + chained flat
  /// rows layout as exec::HashJoinOp, private to the lane that built it
  /// and read-only during the probe phase.
  struct Partition {
    exec::HashKeyIndex index;
    std::vector<size_t> heads;
    std::vector<exec::Row> rows;
    std::vector<size_t> next;
    size_t ApproxBytes() const {
      return index.ApproxBytes() + heads.capacity() * sizeof(size_t) +
             next.capacity() * sizeof(size_t) +
             rows.capacity() * sizeof(exec::Row);
    }
  };

  std::vector<size_t> left_keys_;
  std::vector<size_t> right_keys_;
  ExprPtr residual_;
  RelationSchema schema_;
  exec::PhysOpPtr left_;
  exec::PhysOpPtr right_;
  size_t workers_;
  size_t morsel_size_;

  // Open-time state, cleared on Close.
  std::vector<std::vector<std::vector<exec::Row>>> staged_;  // [lane][p]
  std::vector<Partition> partitions_;
  std::vector<std::vector<exec::Row>> out_;  // [lane] probe output
  size_t emit_lane_ = 0;
  size_t emit_pos_ = 0;

  // One-lane streaming-probe cursor (mirrors exec::HashJoinOp): the
  // current probe row and its position in the match chain.
  bool streaming_probe_ = false;
  exec::RowBatch probe_batch_;
  size_t probe_pos_ = 0;
  std::optional<exec::Row> current_left_;
  size_t chain_ = kNone;
};

/// Γ, partitioned: one morsel pass builds per-lane pre-aggregation tables
/// routed by group-key radix; a parallel merge phase folds each partition
/// across lanes with AggAccumulator::Merge (Definition 3.3 aggregates are
/// multiplicity-weighted, hence additive over disjoint input partitions).
/// Key-free aggregation degenerates to per-lane accumulators merged at the
/// join — classic two-phase aggregation — and preserves the Definition 3.3
/// empty-input global group.
class ParallelHashGroupByOp final : public exec::PhysicalOperator {
 public:
  ParallelHashGroupByOp(std::vector<size_t> keys, std::vector<AggSpec> aggs,
                        RelationSchema output_schema, exec::PhysOpPtr child,
                        size_t workers, size_t morsel_size);

  const RelationSchema& schema() const override { return schema_; }
  std::string_view name() const override { return "ParallelHashGroupBy"; }
  std::vector<const exec::PhysicalOperator*> children() const override {
    return {child_.get()};
  }

 protected:
  Status OpenImpl() override;
  Result<std::optional<exec::Row>> NextImpl() override;
  Status NextBatchImpl(exec::RowBatch& out) override;
  void CloseImpl() override;

 private:
  /// One group table: key index plus the flat accumulator arena
  /// (group id x aggregate), as in exec::HashGroupByOp.
  struct GroupTable {
    exec::HashKeyIndex index;
    std::vector<AggAccumulator> accs;
    size_t ApproxBytes() const {
      return index.ApproxBytes() + accs.capacity() * sizeof(AggAccumulator);
    }
  };

  Result<exec::Row> EmitGroup(const GroupTable& table, size_t id);

  std::vector<size_t> keys_;
  std::vector<AggSpec> aggs_;
  std::vector<Type> agg_types_;  // Input type per aggregate, for ctors.
  std::vector<size_t> key_identity_;  // 0..keys-1: re-keying stored keys.
  RelationSchema schema_;
  exec::PhysOpPtr child_;
  size_t workers_;
  size_t morsel_size_;

  std::vector<std::vector<GroupTable>> lane_tables_;  // [lane][p]
  std::vector<GroupTable> merged_;                    // [p]
  size_t emit_part_ = 0;
  size_t emit_pos_ = 0;
};

/// δ, partitioned: per-lane pre-dedup into radix-routed key indexes, then
/// a parallel partition-wise union of supports; every surviving tuple
/// streams with multiplicity 1.
class ParallelDedupOp final : public exec::PhysicalOperator {
 public:
  ParallelDedupOp(exec::PhysOpPtr child, size_t workers, size_t morsel_size);

  const RelationSchema& schema() const override { return child_->schema(); }
  std::string_view name() const override { return "ParallelDedup"; }
  std::vector<const exec::PhysicalOperator*> children() const override {
    return {child_.get()};
  }

 protected:
  Status OpenImpl() override;
  Result<std::optional<exec::Row>> NextImpl() override;
  Status NextBatchImpl(exec::RowBatch& out) override;
  void CloseImpl() override;

 private:
  exec::PhysOpPtr child_;
  std::vector<size_t> identity_;  // 0..arity-1: δ keys on all attributes.
  size_t workers_;
  size_t morsel_size_;

  std::vector<std::vector<exec::HashKeyIndex>> lane_seen_;  // [lane][p]
  std::vector<exec::HashKeyIndex> merged_;                  // [p]
  size_t emit_part_ = 0;
  size_t emit_pos_ = 0;
};

}  // namespace parallel
}  // namespace mra

#endif  // MRA_PARALLEL_PARALLEL_OPS_H_
