// Process-wide worker pool for morsel-driven intra-query parallelism
// (docs/PARALLELISM.md).  NUMA-oblivious and fixed-size: a set of plain
// threads created on first use, shared by every query in the process.
//
// Two pieces:
//
//  * Admission (`Admit`): a query operator asks for `want` lanes and gets
//    an RAII Lease for what the pool can spare right now.  Lane 0 is
//    always the calling thread, so a lease is never smaller than 1 — when
//    the pool is saturated (many concurrent queries, the server's
//    admission problem) the operator degrades to serial execution instead
//    of queueing, and the `parallel.shed` counter records the downgrade.
//    This is the same shed-don't-queue posture the network server takes
//    at its session cap.
//
//  * Fan-out (`ParallelFor`): runs fn(lane) for every lane of a lease.
//    The caller runs lane 0 itself; the remaining lanes are claimed off a
//    shared atomic counter by pool workers *and* by the caller once its
//    own lane finishes.  Because any unclaimed lane can always be taken
//    by the caller, fan-out never waits on pool capacity — a saturated or
//    busy pool just means the caller does more of the work itself, and
//    nested ParallelFor calls (an operator inside a worker lane) cannot
//    deadlock.
//
// fn must report failure through out-of-band state (per-lane Status
// slots), never by throwing.

#ifndef MRA_PARALLEL_WORKER_POOL_H_
#define MRA_PARALLEL_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mra {
namespace parallel {

class WorkerPool {
 public:
  /// The process-wide pool.  Threads are created lazily on first
  /// admission and joined at process exit.
  static WorkerPool& Global();

  /// Reserved pool lanes, returned on destruction.  Movable, not
  /// copyable; `lanes()` counts the calling thread's lane 0, so it is
  /// always >= 1.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      Reset();
      pool_ = other.pool_;
      extra_ = other.extra_;
      other.pool_ = nullptr;
      other.extra_ = 0;
      return *this;
    }
    ~Lease() { Reset(); }

    /// Total lanes including the caller's own: 1 + reserved pool lanes.
    size_t lanes() const { return 1 + extra_; }

   private:
    friend class WorkerPool;
    Lease(WorkerPool* pool, size_t extra) : pool_(pool), extra_(extra) {}
    void Reset();

    WorkerPool* pool_ = nullptr;
    size_t extra_ = 0;
  };

  /// Reserves up to `want - 1` pool lanes (the caller is the first lane).
  /// `want` <= 1 — and a saturated pool — yields a serial lease of one
  /// lane; the saturated case also bumps `parallel.shed`.
  Lease Admit(size_t want);

  /// Runs fn(0) … fn(lease.lanes() - 1), lane 0 on the calling thread,
  /// and returns when every lane has finished.  Safe to call from inside
  /// a worker lane (nested fan-out degrades gracefully, see above).
  void ParallelFor(const Lease& lease, const std::function<void(size_t)>& fn);

  /// Fixed thread capacity (hardware concurrency, at least 2).
  size_t capacity() const { return capacity_; }

  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

 private:
  WorkerPool();

  struct Task {
    explicit Task(size_t lanes, const std::function<void(size_t)>* fn)
        : lanes(lanes), fn(fn) {}
    const size_t lanes;
    const std::function<void(size_t)>* const fn;
    std::atomic<size_t> next_lane{1};  // Lane 0 belongs to the caller.
    std::mutex mu;
    std::condition_variable done_cv;
    size_t finished = 0;  // Guarded by mu; lanes run to completion.
  };

  /// Claims and runs lanes of `task` until none are left; returns the
  /// number of lanes this thread ran.
  static size_t RunLanes(Task& task);

  void EnsureThreads(size_t n);
  void WorkerLoop();

  const size_t capacity_;
  std::atomic<size_t> reserved_{0};

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Task>> queue_;
  std::vector<std::thread> threads_;  // Guarded by mu_ (growth only).
  bool stopping_ = false;
};

}  // namespace parallel
}  // namespace mra

#endif  // MRA_PARALLEL_WORKER_POOL_H_
