#include "mra/parallel/parallel.h"

#include <thread>

#include "mra/algebra/ops.h"
#include "mra/common/hash.h"
#include "mra/exec/operator.h"
#include "mra/expr/eval.h"
#include "mra/obs/metrics.h"

namespace mra {
namespace parallel {

namespace {

size_t ResolveThreads(const ParallelOptions& options) {
  if (options.num_threads > 0) return options.num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : hw;
}

// Runs `fn(i)` for i in [0, n) on n threads, collecting the first error.
template <typename Fn>
Status RunWorkers(size_t n, const Fn& fn) {
  static obs::Counter* tasks =
      obs::MetricsRegistry::Global().GetCounter("parallel.tasks");
  tasks->Inc(n);
  std::vector<Status> statuses(n);
  std::vector<std::thread> workers;
  workers.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers.emplace_back([i, &fn, &statuses] { statuses[i] = fn(i); });
  }
  for (std::thread& t : workers) t.join();
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

// ⊎-recombination of the fragment results.
Relation UnionAll(std::vector<Relation> fragments,
                  const RelationSchema& schema) {
  Relation out(schema);
  for (Relation& fragment : fragments) {
    for (const auto& [tuple, count] : fragment) {
      out.InsertUnchecked(tuple, count);
    }
  }
  return out;
}

}  // namespace

std::vector<Relation> HashPartition(const Relation& input,
                                    const std::vector<size_t>& key_attrs,
                                    size_t fragments) {
  MRA_CHECK_GT(fragments, 0u);
  std::vector<Relation> out(fragments, Relation(input.schema()));
  for (const auto& [tuple, count] : input) {
    size_t h;
    if (key_attrs.empty()) {
      h = tuple.Hash();
    } else {
      h = Mix64(key_attrs.size());
      for (size_t k : key_attrs) h = HashCombine(h, tuple.at(k).Hash());
    }
    out[h % fragments].InsertUnchecked(tuple, count);
  }
  return out;
}

std::vector<Relation> RoundRobinPartition(const Relation& input,
                                          size_t fragments) {
  MRA_CHECK_GT(fragments, 0u);
  std::vector<Relation> out(fragments, Relation(input.schema()));
  size_t i = 0;
  for (const auto& [tuple, count] : input) {
    out[i++ % fragments].InsertUnchecked(tuple, count);
  }
  return out;
}

Result<Relation> ParallelSelect(const ExprPtr& condition,
                                const Relation& input,
                                ParallelOptions options) {
  MRA_RETURN_IF_ERROR(CheckPredicate(condition, input.schema()));
  size_t n = ResolveThreads(options);
  std::vector<Relation> fragments = RoundRobinPartition(input, n);
  std::vector<Relation> results(n, Relation(input.schema()));
  MRA_RETURN_IF_ERROR(RunWorkers(n, [&](size_t i) -> Status {
    MRA_ASSIGN_OR_RETURN(results[i], ops::Select(condition, fragments[i]));
    return Status::OK();
  }));
  return UnionAll(std::move(results), input.schema());
}

Result<Relation> ParallelProject(const std::vector<ExprPtr>& exprs,
                                 const Relation& input,
                                 ParallelOptions options) {
  MRA_ASSIGN_OR_RETURN(RelationSchema schema,
                       InferProjectionSchema(exprs, input.schema()));
  size_t n = ResolveThreads(options);
  std::vector<Relation> fragments = RoundRobinPartition(input, n);
  std::vector<Relation> results(n, Relation(schema));
  MRA_RETURN_IF_ERROR(RunWorkers(n, [&](size_t i) -> Status {
    MRA_ASSIGN_OR_RETURN(results[i], ops::Project(exprs, fragments[i]));
    return Status::OK();
  }));
  return UnionAll(std::move(results), schema);
}

Result<Relation> ParallelEquiJoin(const std::vector<size_t>& left_keys,
                                  const std::vector<size_t>& right_keys,
                                  const ExprPtr& residual_or_null,
                                  const Relation& left, const Relation& right,
                                  ParallelOptions options) {
  if (left_keys.empty() || left_keys.size() != right_keys.size()) {
    return Status::InvalidArgument(
        "parallel equi-join needs matching, non-empty key lists");
  }
  for (size_t i = 0; i < left_keys.size(); ++i) {
    if (left_keys[i] >= left.schema().arity() ||
        right_keys[i] >= right.schema().arity()) {
      return Status::InvalidArgument("join key attribute out of range");
    }
    if (left.schema().TypeOf(left_keys[i]) !=
        right.schema().TypeOf(right_keys[i])) {
      return Status::TypeError(
          "parallel equi-join keys must share one domain");
    }
  }
  if (residual_or_null != nullptr) {
    MRA_RETURN_IF_ERROR(CheckPredicate(
        residual_or_null, left.schema().Concat(right.schema())));
  }
  size_t n = ResolveThreads(options);
  // Co-partition: equal key values hash to the same fragment on each side,
  // so fragment i of the join is exactly left_i ⋈ right_i; each fragment
  // joins hash-based (as PRISMA's local operators would).
  std::vector<Relation> left_fragments = HashPartition(left, left_keys, n);
  std::vector<Relation> right_fragments = HashPartition(right, right_keys, n);
  RelationSchema joined = left.schema().Concat(right.schema());
  std::vector<Relation> results(n, Relation(joined));
  MRA_RETURN_IF_ERROR(RunWorkers(n, [&](size_t i) -> Status {
    exec::HashJoinOp join(
        left_keys, right_keys, residual_or_null,
        std::make_unique<exec::ScanOp>(&left_fragments[i]),
        std::make_unique<exec::ScanOp>(&right_fragments[i]));
    MRA_ASSIGN_OR_RETURN(results[i],
                         exec::ExecuteToRelation(join, options.batch_size));
    return Status::OK();
  }));
  return UnionAll(std::move(results), joined);
}

Result<Relation> ParallelGroupBy(const std::vector<size_t>& keys,
                                 const std::vector<AggSpec>& aggs,
                                 const Relation& input,
                                 ParallelOptions options) {
  MRA_ASSIGN_OR_RETURN(RelationSchema out_schema,
                       ops::GroupBySchema(keys, aggs, input.schema()));
  size_t n = ResolveThreads(options);

  if (!keys.empty()) {
    // Partition by the grouping keys: every group lives wholly in one
    // fragment, so the fragment results just concatenate.
    std::vector<Relation> fragments = HashPartition(input, keys, n);
    std::vector<Relation> results(n, Relation(out_schema));
    MRA_RETURN_IF_ERROR(RunWorkers(n, [&](size_t i) -> Status {
      if (fragments[i].empty()) {
        results[i] = Relation(out_schema);
        return Status::OK();
      }
      MRA_ASSIGN_OR_RETURN(results[i], ops::GroupBy(keys, aggs, fragments[i]));
      return Status::OK();
    }));
    return UnionAll(std::move(results), out_schema);
  }

  // Key-free (single global row): two-phase aggregation — per-fragment
  // partial accumulators, merged sequentially at the end.
  std::vector<Relation> fragments = RoundRobinPartition(input, n);
  std::vector<std::vector<AggAccumulator>> partials;
  partials.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<AggAccumulator> accs;
    accs.reserve(aggs.size());
    for (const AggSpec& agg : aggs) {
      accs.emplace_back(agg.kind, input.schema().TypeOf(agg.attr));
    }
    partials.push_back(std::move(accs));
  }
  MRA_RETURN_IF_ERROR(RunWorkers(n, [&](size_t i) -> Status {
    for (const auto& [tuple, count] : fragments[i]) {
      for (size_t a = 0; a < aggs.size(); ++a) {
        partials[i][a].Add(tuple.at(aggs[a].attr), count);
      }
    }
    return Status::OK();
  }));
  for (size_t i = 1; i < n; ++i) {
    for (size_t a = 0; a < aggs.size(); ++a) {
      partials[0][a].Merge(partials[i][a]);
    }
  }
  Relation out(out_schema);
  std::vector<Value> values;
  values.reserve(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    MRA_ASSIGN_OR_RETURN(Value v, partials[0][a].Finish());
    values.push_back(std::move(v));
  }
  out.InsertUnchecked(Tuple(std::move(values)), 1);
  return out;
}

}  // namespace parallel
}  // namespace mra
