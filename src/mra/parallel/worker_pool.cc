#include "mra/parallel/worker_pool.h"

#include <algorithm>

#include "mra/obs/metrics.h"

namespace mra {
namespace parallel {

namespace {

obs::Counter* TasksTotal() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("parallel.tasks_total");
  return c;
}

obs::Counter* ShedTotal() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("parallel.shed_total");
  return c;
}

obs::Gauge* ReservedLanes() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("parallel.reserved_lanes");
  return g;
}

}  // namespace

WorkerPool& WorkerPool::Global() {
  static WorkerPool pool;
  return pool;
}

WorkerPool::WorkerPool()
    : capacity_(std::max<size_t>(2, std::thread::hardware_concurrency())) {}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Lease::Reset() {
  if (pool_ != nullptr && extra_ > 0) {
    pool_->reserved_.fetch_sub(extra_, std::memory_order_relaxed);
    ReservedLanes()->Add(-static_cast<int64_t>(extra_));
  }
  pool_ = nullptr;
  extra_ = 0;
}

WorkerPool::Lease WorkerPool::Admit(size_t want) {
  want = std::min(want, capacity_);
  if (want <= 1) return Lease(this, 0);
  size_t ask = want - 1;  // Lane 0 is the caller's own thread.
  size_t granted = 0;
  size_t reserved = reserved_.load(std::memory_order_relaxed);
  while (true) {
    size_t free = reserved < capacity_ ? capacity_ - reserved : 0;
    granted = std::min(ask, free);
    if (granted == 0) break;
    if (reserved_.compare_exchange_weak(reserved, reserved + granted,
                                        std::memory_order_relaxed)) {
      break;
    }
    // CAS failure reloaded `reserved`; recompute against the new value.
  }
  if (granted == 0) {
    // Saturated: run serial rather than queue behind other queries — the
    // same shed posture the server takes at its session cap.
    ShedTotal()->Inc();
    return Lease(this, 0);
  }
  ReservedLanes()->Add(static_cast<int64_t>(granted));
  EnsureThreads(reserved_.load(std::memory_order_relaxed));
  return Lease(this, granted);
}

void WorkerPool::EnsureThreads(size_t n) {
  n = std::min(n, capacity_);
  std::lock_guard<std::mutex> lock(mu_);
  while (threads_.size() < n) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

size_t WorkerPool::RunLanes(Task& task) {
  size_t ran = 0;
  while (true) {
    size_t lane = task.next_lane.fetch_add(1, std::memory_order_relaxed);
    if (lane >= task.lanes) break;
    (*task.fn)(lane);
    ++ran;
  }
  if (ran > 0) {
    std::lock_guard<std::mutex> lock(task.mu);
    task.finished += ran;
    if (task.finished == task.lanes - 1) task.done_cv.notify_all();
  }
  return ran;
}

void WorkerPool::ParallelFor(const Lease& lease,
                             const std::function<void(size_t)>& fn) {
  size_t lanes = lease.lanes();
  if (lanes <= 1) {
    fn(0);
    return;
  }
  TasksTotal()->Inc();
  auto task = std::make_shared<Task>(lanes, &fn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // One queue entry per helper lane; a worker that drains the claim
    // counter early just drops its entry.
    for (size_t i = 1; i < lanes; ++i) queue_.push_back(task);
  }
  work_cv_.notify_all();

  fn(0);
  // Help with (or, when every worker is busy elsewhere, simply run) the
  // unclaimed lanes.  Every lane is claimable by this thread, which is
  // what makes fan-out deadlock-free under nesting and saturation.
  RunLanes(*task);

  std::unique_lock<std::mutex> lock(task->mu);
  task->done_cv.wait(lock,
                     [&] { return task->finished == task->lanes - 1; });
}

void WorkerPool::WorkerLoop() {
  while (true) {
    std::shared_ptr<Task> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    RunLanes(*task);
  }
}

}  // namespace parallel
}  // namespace mra
