// Parallel data processing — the PRISMA/DB direction §5 points at: "the
// language has been extended with special operators to support parallel
// data processing.  This demonstrates that extensions are well possible,
// without violating the well-structuredness of the language."
//
// The operators here are the shared-memory analogues of PRISMA's
// fragmentation operators:
//
//  * HashPartition      — splits a multi-set into disjoint fragments by a
//                         hash of key attributes (counts preserved);
//  * ParallelSelect     — fragments round-robin, filters on worker threads,
//                         reunites with ⊎;
//  * ParallelJoin       — partitions both inputs by the equi-join keys so
//                         matching tuples land in the same fragment, joins
//                         fragments in parallel, reunites;
//  * ParallelGroupBy    — partitions by the grouping keys (groups are
//                         whole per fragment), aggregates in parallel;
//                         with no keys, runs two-phase: per-fragment
//                         partial accumulators merged at the end.
//
// Every operator is provably a ⊎-recombination of the sequential operator
// over a partition of its input(s), so the multi-set semantics is exactly
// that of the corresponding mra/algebra operator — which the tests assert.

#ifndef MRA_PARALLEL_PARALLEL_H_
#define MRA_PARALLEL_PARALLEL_H_

#include <cstddef>
#include <vector>

#include "mra/algebra/aggregate.h"
#include "mra/core/relation.h"
#include "mra/expr/scalar_expr.h"

namespace mra {
namespace parallel {

struct ParallelOptions {
  /// Worker threads (and fragments).  0 means hardware concurrency.
  size_t num_threads = 0;
  /// Rows per NextBatch() pull when a worker drains a physical operator
  /// (the per-fragment hash joins); 0 falls back to row-at-a-time.
  size_t batch_size = 1024;
};

/// Splits `input` into `fragments` disjoint relations: tuple x goes to
/// fragment hash(x[key_attrs]) mod fragments, keeping its multiplicity.
/// With empty `key_attrs` the whole tuple is the key.
std::vector<Relation> HashPartition(const Relation& input,
                                    const std::vector<size_t>& key_attrs,
                                    size_t fragments);

/// Splits `input` into `fragments` relations of roughly equal distinct
/// size, irrespective of values (for key-free parallelism).
std::vector<Relation> RoundRobinPartition(const Relation& input,
                                          size_t fragments);

/// σ_φ in parallel.  Result ≡ ops::Select(condition, input).
Result<Relation> ParallelSelect(const ExprPtr& condition,
                                const Relation& input,
                                ParallelOptions options = {});

/// π_α in parallel.  Result ≡ ops::Project(exprs, input).
Result<Relation> ParallelProject(const std::vector<ExprPtr>& exprs,
                                 const Relation& input,
                                 ParallelOptions options = {});

/// Equi-join in parallel: `left_keys[i]` pairs with `right_keys[i]`;
/// `residual_or_null` applies to the concatenated tuple.  Result ≡
/// ops::Join of the conjunction.  Key lists must be non-empty.
Result<Relation> ParallelEquiJoin(const std::vector<size_t>& left_keys,
                                  const std::vector<size_t>& right_keys,
                                  const ExprPtr& residual_or_null,
                                  const Relation& left, const Relation& right,
                                  ParallelOptions options = {});

/// Γ in parallel.  Result ≡ ops::GroupBy(keys, aggs, input).
Result<Relation> ParallelGroupBy(const std::vector<size_t>& keys,
                                 const std::vector<AggSpec>& aggs,
                                 const Relation& input,
                                 ParallelOptions options = {});

}  // namespace parallel
}  // namespace mra

#endif  // MRA_PARALLEL_PARALLEL_H_
