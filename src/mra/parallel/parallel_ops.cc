#include "mra/parallel/parallel_ops.h"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "mra/expr/eval.h"

namespace mra {
namespace parallel {

namespace {

using exec::ExecContext;
using exec::HashKeyIndex;
using exec::PhysicalOperator;
using exec::Row;
using exec::RowBatch;

constexpr size_t kNone = static_cast<size_t>(-1);

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Same coarse budget estimate the serial materialising operators use.
uint64_t ApproxRowBytes(const Row& row) {
  uint64_t bytes = sizeof(Row) + row.tuple.arity() * sizeof(Value);
  for (const Value& v : row.tuple.values()) {
    if (v.kind() == TypeKind::kString) bytes += v.string_value().capacity();
  }
  return bytes;
}

/// The shared child cursor: each Pull hands the calling lane one morsel
/// (one RowBatch) under a mutex.  The mutex also serializes the child
/// subtree's own metrics and budget charges, so single-threaded operators
/// below a parallel one stay race-free.  The first error — the child's or
/// one a lane reports through Abort() — latches and ends every lane's
/// loop.
class MorselSource {
 public:
  MorselSource(PhysicalOperator* child, size_t morsel_size)
      : child_(child), morsel_size_(morsel_size) {}

  /// Fills `out` with the next morsel; false at end of stream or once an
  /// error has latched.
  bool Pull(RowBatch* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (done_ || !status_.ok()) return false;
    out->SetCapacity(morsel_size_);
    Status s = child_->NextBatch(*out);
    if (!s.ok()) {
      status_ = s;
      return false;
    }
    if (out->empty()) {
      done_ = true;
      return false;
    }
    return true;
  }

  /// Latches a lane-local error (evaluation failure, governance kill) so
  /// the other lanes wind down at their next Pull.
  void Abort(const Status& s) {
    std::lock_guard<std::mutex> lock(mu_);
    if (status_.ok()) status_ = s;
  }

  Status status() {
    std::lock_guard<std::mutex> lock(mu_);
    return status_;
  }

 private:
  std::mutex mu_;
  PhysicalOperator* child_;
  size_t morsel_size_;
  bool done_ = false;
  Status status_;
};

/// Per-phase lane bookkeeping: a Status slot per lane (first non-OK wins
/// at the join) and the summed busy time feeding OperatorMetrics::cpu_ns.
struct Phase {
  explicit Phase(size_t lanes) : status(lanes) {}

  Status First() const {
    for (const Status& s : status) {
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  std::vector<Status> status;
  std::atomic<uint64_t> cpu_ns{0};
};

}  // namespace

// --- ParallelHashJoinOp. ---

ParallelHashJoinOp::ParallelHashJoinOp(std::vector<size_t> left_keys,
                                       std::vector<size_t> right_keys,
                                       ExprPtr residual_or_null,
                                       exec::PhysOpPtr left,
                                       exec::PhysOpPtr right, size_t workers,
                                       size_t morsel_size)
    : left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual_or_null)),
      schema_(left->schema().Concat(right->schema())),
      left_(std::move(left)),
      right_(std::move(right)),
      workers_(workers),
      morsel_size_(morsel_size == 0 ? exec::kDefaultBatchSize : morsel_size) {
  MRA_CHECK_EQ(left_keys_.size(), right_keys_.size());
  MRA_CHECK(!left_keys_.empty())
      << "ParallelHashJoin requires at least one key pair";
}

Status ParallelHashJoinOp::OpenImpl() {
  staged_.clear();
  partitions_.clear();
  out_.clear();
  emit_lane_ = 0;
  emit_pos_ = 0;
  streaming_probe_ = false;
  probe_batch_.Clear();
  probe_pos_ = 0;
  current_left_.reset();
  chain_ = kNone;

  WorkerPool& pool = WorkerPool::Global();
  WorkerPool::Lease lease = pool.Admit(workers_);
  const size_t lanes = lease.lanes();
  metrics_.workers = static_cast<uint32_t>(lanes);
  // A one-lane lease (workers <= 1, or a saturated pool that shed the
  // admission to serial) takes the fast path: direct build into a single
  // arena and a streaming probe, skipping the staging pass, the radix
  // routing and the output materialisation below.
  if (lanes == 1) return OpenSerial();
  // A few partitions per lane so the dynamic claim evens out skewed key
  // distributions.
  const size_t parts = NextPow2(4 * lanes);
  const size_t mask = parts - 1;
  ExecContext* ctx = exec_context();
  const bool governed = ctx != nullptr;
  std::vector<std::atomic<uint64_t>> lane_bytes(lanes);
  auto fold_footprint = [&]() -> Status {  // Lane 0 / query thread only.
    uint64_t total = 0;
    for (const auto& b : lane_bytes) {
      total += b.load(std::memory_order_relaxed);
    }
    return ChargeMemTo(total);
  };

  // --- Phase 1: radix-partition the build side. ---
  MRA_RETURN_IF_ERROR(right_->Open());
  staged_.assign(lanes, std::vector<std::vector<Row>>(parts));
  {
    Phase phase(lanes);
    MorselSource source(right_.get(), morsel_size_);
    std::atomic<uint64_t> total_rows{0};
    pool.ParallelFor(lease, [&](size_t lane) {
      uint64_t t0 = NowNs();
      RowBatch morsel(morsel_size_);
      std::vector<std::vector<Row>>& stage = staged_[lane];
      uint64_t rows = 0;
      uint64_t bytes = 0;
      while (true) {
        if (ctx != nullptr) {
          Status g = ctx->Check();
          if (!g.ok()) {
            phase.status[lane] = g;
            source.Abort(g);
            break;
          }
        }
        if (!source.Pull(&morsel)) break;
        rows += morsel.size();
        for (Row& row : morsel) {
          size_t p = row.tuple.HashKey(right_keys_) & mask;
          if (governed) bytes += ApproxRowBytes(row);
          stage[p].push_back(std::move(row));
        }
        if (governed) {
          lane_bytes[lane].store(bytes, std::memory_order_relaxed);
          if (lane == 0) {
            Status charged = fold_footprint();
            if (!charged.ok()) {
              phase.status[lane] = charged;
              source.Abort(charged);
              break;
            }
          }
        }
      }
      total_rows.fetch_add(rows, std::memory_order_relaxed);
      phase.cpu_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
    });
    metrics_.cpu_ns += phase.cpu_ns.load(std::memory_order_relaxed);
    metrics_.build_rows = total_rows.load(std::memory_order_relaxed);
    MRA_RETURN_IF_ERROR(source.status());
    MRA_RETURN_IF_ERROR(phase.First());
  }
  right_->Close();
  if (governed) MRA_RETURN_IF_ERROR(fold_footprint());

  // --- Phase 2: build one private arena per partition.  Lanes claim
  // partitions off a shared counter; a partition folds every lane's
  // staged rows for it, so each arena is built by exactly one thread. ---
  partitions_ = std::vector<Partition>(parts);
  {
    Phase phase(lanes);
    std::atomic<size_t> claim{0};
    pool.ParallelFor(lease, [&](size_t lane) {
      uint64_t t0 = NowNs();
      while (true) {
        size_t p = claim.fetch_add(1, std::memory_order_relaxed);
        if (p >= parts) break;
        if (ctx != nullptr) {
          Status g = ctx->Check();
          if (!g.ok()) {
            phase.status[lane] = g;
            break;
          }
        }
        Partition& part = partitions_[p];
        for (size_t l = 0; l < lanes; ++l) {
          for (Row& row : staged_[l][p]) {
            bool inserted = false;
            size_t id = part.index.InsertKey(row.tuple, right_keys_,
                                             &inserted);
            if (inserted) part.heads.push_back(kNone);
            part.next.push_back(part.heads[id]);
            part.heads[id] = part.rows.size();
            part.rows.push_back(std::move(row));
          }
          // Release staged storage as it is consumed, partition by
          // partition, so peak memory is staged + one arena, not 2x.
          staged_[l][p] = std::vector<Row>();
        }
      }
      phase.cpu_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
    });
    metrics_.cpu_ns += phase.cpu_ns.load(std::memory_order_relaxed);
    MRA_RETURN_IF_ERROR(phase.First());
  }
  staged_.clear();
  uint64_t arena_bytes = 0;
  size_t entries = 0;
  for (const Partition& part : partitions_) {
    arena_bytes += part.ApproxBytes();
    entries += part.index.size();
  }
  metrics_.peak_hash_entries = entries;
  MRA_RETURN_IF_ERROR(NoteHashFootprint(arena_bytes));
  for (auto& b : lane_bytes) b.store(0, std::memory_order_relaxed);

  // --- Phase 3: probe morsels route by the same radix into read-only
  // partitions; each lane appends matches to its private output. ---
  MRA_RETURN_IF_ERROR(left_->Open());
  out_.assign(lanes, {});
  {
    Phase phase(lanes);
    MorselSource source(left_.get(), morsel_size_);
    std::atomic<uint64_t> total_rows{0};
    pool.ParallelFor(lease, [&](size_t lane) {
      uint64_t t0 = NowNs();
      RowBatch morsel(morsel_size_);
      std::vector<Row>& sink = out_[lane];
      uint64_t rows = 0;
      uint64_t bytes = 0;
      auto process = [&](const RowBatch& batch) -> Status {
        for (const Row& probe : batch) {
          size_t p = probe.tuple.HashKey(left_keys_) & mask;
          const Partition& part = partitions_[p];
          size_t id = part.index.FindKey(probe.tuple, left_keys_);
          if (id == HashKeyIndex::kNotFound) continue;
          for (size_t c = part.heads[id]; c != kNone; c = part.next[c]) {
            Tuple combined = probe.tuple.Concat(part.rows[c].tuple);
            if (residual_ != nullptr) {
              MRA_ASSIGN_OR_RETURN(bool keep,
                                   EvalPredicate(*residual_, combined));
              if (!keep) continue;
            }
            if (governed) {
              bytes += sizeof(Row) + combined.arity() * sizeof(Value);
            }
            sink.push_back(
                Row{std::move(combined), probe.count * part.rows[c].count});
          }
        }
        return Status::OK();
      };
      while (true) {
        if (ctx != nullptr) {
          Status g = ctx->Check();
          if (!g.ok()) {
            phase.status[lane] = g;
            source.Abort(g);
            break;
          }
        }
        if (!source.Pull(&morsel)) break;
        rows += morsel.size();
        Status s = process(morsel);
        if (!s.ok()) {
          phase.status[lane] = s;
          source.Abort(s);
          break;
        }
        if (governed) {
          lane_bytes[lane].store(bytes, std::memory_order_relaxed);
          if (lane == 0) {
            Status charged = ChargeMemTo(arena_bytes + [&] {
              uint64_t total = 0;
              for (const auto& b : lane_bytes) {
                total += b.load(std::memory_order_relaxed);
              }
              return total;
            }());
            if (!charged.ok()) {
              phase.status[lane] = charged;
              source.Abort(charged);
              break;
            }
          }
        }
      }
      total_rows.fetch_add(rows, std::memory_order_relaxed);
      phase.cpu_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
    });
    metrics_.cpu_ns += phase.cpu_ns.load(std::memory_order_relaxed);
    metrics_.probe_rows = total_rows.load(std::memory_order_relaxed);
    MRA_RETURN_IF_ERROR(source.status());
    MRA_RETURN_IF_ERROR(phase.First());
    if (governed) {
      uint64_t total = arena_bytes;
      for (const auto& b : lane_bytes) {
        total += b.load(std::memory_order_relaxed);
      }
      MRA_RETURN_IF_ERROR(ChargeMemTo(total));
    }
  }
  left_->Close();
  return Status::OK();
}

// One-lane fast path: the build lands straight in partitions_[0] (same
// arena layout, no staging pass) and Next/NextBatch stream the probe
// exactly like exec::HashJoinOp — bench/e20_parallel_scaling holds this
// within 5% of the serial kernel.  Governance still lands per batch: the
// children's own NextBatch wrappers check the context, and the footprint
// notes below charge the budget as the arena grows.
Status ParallelHashJoinOp::OpenSerial() {
  partitions_ = std::vector<Partition>(1);
  Partition& part = partitions_[0];
  uint64_t t0 = NowNs();
  MRA_RETURN_IF_ERROR(right_->Open());
  RowBatch batch(morsel_size_);
  while (true) {
    MRA_RETURN_IF_ERROR(right_->NextBatch(batch));
    if (batch.empty()) break;
    for (Row& row : batch) {
      bool inserted = false;
      size_t id = part.index.InsertKey(row.tuple, right_keys_, &inserted);
      if (inserted) part.heads.push_back(kNone);
      part.next.push_back(part.heads[id]);
      part.heads[id] = part.rows.size();
      part.rows.push_back(std::move(row));
    }
    MRA_RETURN_IF_ERROR(NoteHashFootprint(part.ApproxBytes()));
  }
  right_->Close();

  metrics_.build_rows = part.rows.size();
  metrics_.peak_hash_entries = part.index.size();
  metrics_.cpu_ns += NowNs() - t0;
  MRA_RETURN_IF_ERROR(NoteHashFootprint(part.ApproxBytes()));
  probe_batch_.SetCapacity(morsel_size_);
  streaming_probe_ = true;
  return left_->Open();
}

Result<std::optional<Row>> ParallelHashJoinOp::StreamNext() {
  const Partition& part = partitions_[0];
  while (true) {
    if (chain_ == kNone) {
      MRA_ASSIGN_OR_RETURN(current_left_, left_->Next());
      if (!current_left_.has_value()) return std::optional<Row>();
      ++metrics_.probe_rows;
      size_t id = part.index.FindKey(current_left_->tuple, left_keys_);
      if (id == HashKeyIndex::kNotFound) continue;
      chain_ = part.heads[id];
      if (chain_ == kNone) continue;
    }
    const Row& rhs = part.rows[chain_];
    chain_ = part.next[chain_];
    Tuple combined = current_left_->tuple.Concat(rhs.tuple);
    if (residual_ != nullptr) {
      MRA_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*residual_, combined));
      if (!keep) continue;
    }
    return std::optional<Row>(
        Row{std::move(combined), current_left_->count * rhs.count});
  }
}

Status ParallelHashJoinOp::StreamBatch(RowBatch& out) {
  const Partition& part = partitions_[0];
  while (!out.full()) {
    if (chain_ == kNone) {
      if (probe_pos_ == probe_batch_.size()) {
        MRA_RETURN_IF_ERROR(left_->NextBatch(probe_batch_));
        probe_pos_ = 0;
        if (probe_batch_.empty()) return Status::OK();
      }
      ++metrics_.probe_rows;
      size_t id = part.index.FindKey(probe_batch_[probe_pos_].tuple,
                                     left_keys_);
      if (id == HashKeyIndex::kNotFound || part.heads[id] == kNone) {
        ++probe_pos_;
        continue;
      }
      chain_ = part.heads[id];
    }
    // Concat into a recycled slot; on residual rejection truncate it back
    // off (the exec::HashJoinOp::EmitMatch idiom).
    const Row& probe = probe_batch_[probe_pos_];
    Row& slot = out.AppendSlot();
    slot.tuple.AssignConcat(probe.tuple, part.rows[chain_].tuple);
    slot.count = probe.count * part.rows[chain_].count;
    if (residual_ != nullptr) {
      MRA_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*residual_, slot.tuple));
      if (!keep) out.Truncate(out.size() - 1);
    }
    chain_ = part.next[chain_];
    if (chain_ == kNone) ++probe_pos_;
  }
  return Status::OK();
}

Result<std::optional<Row>> ParallelHashJoinOp::NextImpl() {
  if (streaming_probe_) return StreamNext();
  while (emit_lane_ < out_.size()) {
    std::vector<Row>& lane_out = out_[emit_lane_];
    if (emit_pos_ < lane_out.size()) {
      Row& r = lane_out[emit_pos_++];
      return std::optional<Row>(Row{std::move(r.tuple), r.count});
    }
    ++emit_lane_;
    emit_pos_ = 0;
  }
  return std::optional<Row>();
}

Status ParallelHashJoinOp::NextBatchImpl(RowBatch& out) {
  if (streaming_probe_) return StreamBatch(out);
  while (!out.full()) {
    if (emit_lane_ >= out_.size()) return Status::OK();
    std::vector<Row>& lane_out = out_[emit_lane_];
    if (emit_pos_ >= lane_out.size()) {
      ++emit_lane_;
      emit_pos_ = 0;
      continue;
    }
    Row& r = lane_out[emit_pos_++];
    Row& slot = out.AppendSlot();
    slot.tuple = std::move(r.tuple);
    slot.count = r.count;
  }
  return Status::OK();
}

void ParallelHashJoinOp::CloseImpl() {
  staged_.clear();
  partitions_.clear();
  out_.clear();
  emit_lane_ = 0;
  emit_pos_ = 0;
  streaming_probe_ = false;
  probe_batch_.Clear();
  probe_pos_ = 0;
  current_left_.reset();
  chain_ = kNone;
  // Children were closed at the end of their phases on the success path;
  // Close is idempotent, so this also covers unwinds.
  left_->Close();
  right_->Close();
}

// --- ParallelHashGroupByOp. ---

ParallelHashGroupByOp::ParallelHashGroupByOp(std::vector<size_t> keys,
                                             std::vector<AggSpec> aggs,
                                             RelationSchema output_schema,
                                             exec::PhysOpPtr child,
                                             size_t workers,
                                             size_t morsel_size)
    : keys_(std::move(keys)),
      aggs_(std::move(aggs)),
      schema_(std::move(output_schema)),
      child_(std::move(child)),
      workers_(workers),
      morsel_size_(morsel_size == 0 ? exec::kDefaultBatchSize : morsel_size) {
  agg_types_.reserve(aggs_.size());
  for (const AggSpec& agg : aggs_) {
    agg_types_.push_back(child_->schema().TypeOf(agg.attr));
  }
  key_identity_.resize(keys_.size());
  for (size_t i = 0; i < keys_.size(); ++i) key_identity_[i] = i;
}

Status ParallelHashGroupByOp::OpenImpl() {
  lane_tables_.clear();
  merged_.clear();
  emit_part_ = 0;
  emit_pos_ = 0;

  WorkerPool& pool = WorkerPool::Global();
  WorkerPool::Lease lease = pool.Admit(workers_);
  const size_t lanes = lease.lanes();
  // Key-free aggregation has a single global group: one partition, merged
  // serially — the classic two-phase shape.
  const size_t parts =
      (lanes == 1 || keys_.empty()) ? 1 : NextPow2(4 * lanes);
  const size_t mask = parts - 1;
  metrics_.workers = static_cast<uint32_t>(lanes);
  ExecContext* ctx = exec_context();
  const bool governed = ctx != nullptr;
  const size_t num_aggs = aggs_.size();
  std::vector<std::atomic<uint64_t>> lane_bytes(lanes);
  auto fold_footprint = [&]() -> Status {
    uint64_t total = 0;
    for (const auto& b : lane_bytes) {
      total += b.load(std::memory_order_relaxed);
    }
    return NoteHashFootprint(total);
  };

  // --- Phase 1: per-lane pre-aggregation, radix-routed by group key.
  // Folding rows into lane-local accumulators both shrinks the merge and
  // is the parallel speedup: Definition 3.3's aggregates commute with
  // partitioning, so partial per-lane states are exact. ---
  MRA_RETURN_IF_ERROR(child_->Open());
  lane_tables_.resize(lanes);
  for (auto& tables : lane_tables_) {
    tables = std::vector<GroupTable>(parts);
  }
  size_t pre_merge_entries = 0;
  {
    Phase phase(lanes);
    MorselSource source(child_.get(), morsel_size_);
    std::atomic<uint64_t> total_rows{0};
    pool.ParallelFor(lease, [&](size_t lane) {
      uint64_t t0 = NowNs();
      RowBatch morsel(morsel_size_);
      std::vector<GroupTable>& tables = lane_tables_[lane];
      uint64_t rows = 0;
      while (true) {
        if (ctx != nullptr) {
          Status g = ctx->Check();
          if (!g.ok()) {
            phase.status[lane] = g;
            source.Abort(g);
            break;
          }
        }
        if (!source.Pull(&morsel)) break;
        rows += morsel.size();
        for (const Row& row : morsel) {
          size_t p = parts == 1 ? 0 : row.tuple.HashKey(keys_) & mask;
          GroupTable& table = tables[p];
          bool inserted = false;
          size_t id = table.index.InsertKey(row.tuple, keys_, &inserted);
          if (inserted) {
            for (size_t i = 0; i < num_aggs; ++i) {
              table.accs.emplace_back(aggs_[i].kind, agg_types_[i]);
            }
          }
          for (size_t i = 0; i < num_aggs; ++i) {
            table.accs[id * num_aggs + i].Add(row.tuple.at(aggs_[i].attr),
                                              row.count);
          }
        }
        if (governed) {
          uint64_t bytes = 0;
          for (const GroupTable& t : tables) bytes += t.ApproxBytes();
          lane_bytes[lane].store(bytes, std::memory_order_relaxed);
          if (lane == 0) {
            Status charged = fold_footprint();
            if (!charged.ok()) {
              phase.status[lane] = charged;
              source.Abort(charged);
              break;
            }
          }
        }
      }
      total_rows.fetch_add(rows, std::memory_order_relaxed);
      phase.cpu_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
    });
    metrics_.cpu_ns += phase.cpu_ns.load(std::memory_order_relaxed);
    metrics_.build_rows = total_rows.load(std::memory_order_relaxed);
    MRA_RETURN_IF_ERROR(source.status());
    MRA_RETURN_IF_ERROR(phase.First());
  }
  child_->Close();
  uint64_t pass1_bytes = 0;
  for (const auto& tables : lane_tables_) {
    for (const GroupTable& t : tables) {
      pass1_bytes += t.ApproxBytes();
      pre_merge_entries += t.index.size();
    }
  }
  MRA_RETURN_IF_ERROR(NoteHashFootprint(pass1_bytes));

  // --- Phase 2: merge each partition across lanes.  Lane 0's table seeds
  // the merge; other lanes' groups re-key on the stored key tuple and
  // their accumulators fold in with AggAccumulator::Merge. ---
  merged_ = std::vector<GroupTable>(parts);
  {
    Phase phase(lanes);
    std::atomic<size_t> claim{0};
    pool.ParallelFor(lease, [&](size_t lane) {
      uint64_t t0 = NowNs();
      while (true) {
        size_t p = claim.fetch_add(1, std::memory_order_relaxed);
        if (p >= parts) break;
        if (ctx != nullptr) {
          Status g = ctx->Check();
          if (!g.ok()) {
            phase.status[lane] = g;
            break;
          }
        }
        GroupTable& m = merged_[p];
        m = std::move(lane_tables_[0][p]);
        for (size_t l = 1; l < lanes; ++l) {
          GroupTable& t = lane_tables_[l][p];
          for (size_t id = 0; id < t.index.size(); ++id) {
            bool inserted = false;
            size_t mid =
                m.index.InsertKey(t.index.key(id), key_identity_, &inserted);
            if (inserted) {
              for (size_t i = 0; i < num_aggs; ++i) {
                m.accs.emplace_back(aggs_[i].kind, agg_types_[i]);
              }
            }
            for (size_t i = 0; i < num_aggs; ++i) {
              m.accs[mid * num_aggs + i].Merge(t.accs[id * num_aggs + i]);
            }
          }
          t = GroupTable();  // Free as consumed.
        }
      }
      phase.cpu_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
    });
    metrics_.cpu_ns += phase.cpu_ns.load(std::memory_order_relaxed);
    MRA_RETURN_IF_ERROR(phase.First());
  }
  lane_tables_.clear();

  // Def 3.3: Γ over an empty relation with no grouping attributes still
  // denotes the one global group (whose AVG/MIN/MAX are then undefined).
  if (keys_.empty() && merged_[0].index.empty()) {
    bool inserted = false;
    merged_[0].index.InsertKey(Tuple{}, keys_, &inserted);
    for (size_t i = 0; i < num_aggs; ++i) {
      merged_[0].accs.emplace_back(aggs_[i].kind, agg_types_[i]);
    }
  }

  size_t groups = 0;
  uint64_t merged_bytes = 0;
  for (const GroupTable& m : merged_) {
    groups += m.index.size();
    merged_bytes += m.ApproxBytes();
  }
  metrics_.distinct_rows = groups;
  metrics_.peak_hash_entries = std::max(pre_merge_entries, groups);
  // hash_bytes already high-watered at pass-1 peak; re-charge down to the
  // merged arena, which is what emission holds.
  MRA_RETURN_IF_ERROR(ChargeMemTo(merged_bytes));
  return Status::OK();
}

Result<Row> ParallelHashGroupByOp::EmitGroup(const GroupTable& table,
                                             size_t id) {
  // Finish() is where Def 3.3's partiality surfaces: AVG/MIN/MAX over an
  // empty group return kUndefined, which propagates out of Next/NextBatch.
  std::vector<Value> values = table.index.key(id).values();
  values.reserve(keys_.size() + aggs_.size());
  for (size_t i = 0; i < aggs_.size(); ++i) {
    MRA_ASSIGN_OR_RETURN(Value v,
                         table.accs[id * aggs_.size() + i].Finish());
    values.push_back(std::move(v));
  }
  return Row{Tuple(std::move(values)), 1};
}

Result<std::optional<Row>> ParallelHashGroupByOp::NextImpl() {
  while (emit_part_ < merged_.size()) {
    if (emit_pos_ < merged_[emit_part_].index.size()) {
      MRA_ASSIGN_OR_RETURN(Row row,
                           EmitGroup(merged_[emit_part_], emit_pos_));
      ++emit_pos_;
      return std::optional<Row>(std::move(row));
    }
    ++emit_part_;
    emit_pos_ = 0;
  }
  return std::optional<Row>();
}

Status ParallelHashGroupByOp::NextBatchImpl(RowBatch& out) {
  while (!out.full()) {
    if (emit_part_ >= merged_.size()) return Status::OK();
    if (emit_pos_ >= merged_[emit_part_].index.size()) {
      ++emit_part_;
      emit_pos_ = 0;
      continue;
    }
    MRA_ASSIGN_OR_RETURN(Row row, EmitGroup(merged_[emit_part_], emit_pos_));
    ++emit_pos_;
    Row& slot = out.AppendSlot();
    slot.tuple = std::move(row.tuple);
    slot.count = row.count;
  }
  return Status::OK();
}

void ParallelHashGroupByOp::CloseImpl() {
  lane_tables_.clear();
  merged_.clear();
  emit_part_ = 0;
  emit_pos_ = 0;
  child_->Close();
}

// --- ParallelDedupOp. ---

ParallelDedupOp::ParallelDedupOp(exec::PhysOpPtr child, size_t workers,
                                 size_t morsel_size)
    : child_(std::move(child)),
      workers_(workers),
      morsel_size_(morsel_size == 0 ? exec::kDefaultBatchSize : morsel_size) {
  identity_.resize(child_->schema().arity());
  for (size_t i = 0; i < identity_.size(); ++i) identity_[i] = i;
}

Status ParallelDedupOp::OpenImpl() {
  lane_seen_.clear();
  merged_.clear();
  emit_part_ = 0;
  emit_pos_ = 0;

  WorkerPool& pool = WorkerPool::Global();
  WorkerPool::Lease lease = pool.Admit(workers_);
  const size_t lanes = lease.lanes();
  const size_t parts = lanes == 1 ? 1 : NextPow2(4 * lanes);
  const size_t mask = parts - 1;
  metrics_.workers = static_cast<uint32_t>(lanes);
  ExecContext* ctx = exec_context();
  const bool governed = ctx != nullptr;
  std::vector<std::atomic<uint64_t>> lane_bytes(lanes);

  // --- Phase 1: per-lane pre-dedup, radix-routed on the whole tuple. ---
  MRA_RETURN_IF_ERROR(child_->Open());
  lane_seen_.resize(lanes);
  for (auto& seen : lane_seen_) {
    seen = std::vector<HashKeyIndex>(parts);
  }
  {
    Phase phase(lanes);
    MorselSource source(child_.get(), morsel_size_);
    std::atomic<uint64_t> total_rows{0};
    pool.ParallelFor(lease, [&](size_t lane) {
      uint64_t t0 = NowNs();
      RowBatch morsel(morsel_size_);
      std::vector<HashKeyIndex>& seen = lane_seen_[lane];
      uint64_t rows = 0;
      while (true) {
        if (ctx != nullptr) {
          Status g = ctx->Check();
          if (!g.ok()) {
            phase.status[lane] = g;
            source.Abort(g);
            break;
          }
        }
        if (!source.Pull(&morsel)) break;
        rows += morsel.size();
        for (const Row& row : morsel) {
          size_t p = parts == 1 ? 0 : row.tuple.HashKey(identity_) & mask;
          bool inserted = false;
          seen[p].InsertKey(row.tuple, identity_, &inserted);
        }
        if (governed) {
          uint64_t bytes = 0;
          for (const HashKeyIndex& s : seen) bytes += s.ApproxBytes();
          lane_bytes[lane].store(bytes, std::memory_order_relaxed);
          if (lane == 0) {
            uint64_t total = 0;
            for (const auto& b : lane_bytes) {
              total += b.load(std::memory_order_relaxed);
            }
            Status charged = NoteHashFootprint(total);
            if (!charged.ok()) {
              phase.status[lane] = charged;
              source.Abort(charged);
              break;
            }
          }
        }
      }
      total_rows.fetch_add(rows, std::memory_order_relaxed);
      phase.cpu_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
    });
    metrics_.cpu_ns += phase.cpu_ns.load(std::memory_order_relaxed);
    metrics_.build_rows = total_rows.load(std::memory_order_relaxed);
    MRA_RETURN_IF_ERROR(source.status());
    MRA_RETURN_IF_ERROR(phase.First());
  }
  child_->Close();
  uint64_t pass1_bytes = 0;
  size_t pre_merge_entries = 0;
  for (const auto& seen : lane_seen_) {
    for (const HashKeyIndex& s : seen) {
      pass1_bytes += s.ApproxBytes();
      pre_merge_entries += s.size();
    }
  }
  MRA_RETURN_IF_ERROR(NoteHashFootprint(pass1_bytes));

  // --- Phase 2: partition-wise union of supports across lanes. ---
  merged_ = std::vector<HashKeyIndex>(parts);
  {
    Phase phase(lanes);
    std::atomic<size_t> claim{0};
    pool.ParallelFor(lease, [&](size_t lane) {
      uint64_t t0 = NowNs();
      while (true) {
        size_t p = claim.fetch_add(1, std::memory_order_relaxed);
        if (p >= parts) break;
        if (ctx != nullptr) {
          Status g = ctx->Check();
          if (!g.ok()) {
            phase.status[lane] = g;
            break;
          }
        }
        HashKeyIndex& m = merged_[p];
        m = std::move(lane_seen_[0][p]);
        for (size_t l = 1; l < lanes; ++l) {
          HashKeyIndex& s = lane_seen_[l][p];
          for (size_t id = 0; id < s.size(); ++id) {
            bool inserted = false;
            m.InsertKey(s.key(id), identity_, &inserted);
          }
          s = HashKeyIndex();  // Free as consumed.
        }
      }
      phase.cpu_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
    });
    metrics_.cpu_ns += phase.cpu_ns.load(std::memory_order_relaxed);
    MRA_RETURN_IF_ERROR(phase.First());
  }
  lane_seen_.clear();

  size_t distinct = 0;
  uint64_t merged_bytes = 0;
  for (const HashKeyIndex& m : merged_) {
    distinct += m.size();
    merged_bytes += m.ApproxBytes();
  }
  metrics_.distinct_rows = distinct;
  metrics_.peak_hash_entries = std::max(pre_merge_entries, distinct);
  MRA_RETURN_IF_ERROR(ChargeMemTo(merged_bytes));
  return Status::OK();
}

Result<std::optional<Row>> ParallelDedupOp::NextImpl() {
  while (emit_part_ < merged_.size()) {
    if (emit_pos_ < merged_[emit_part_].size()) {
      return std::optional<Row>(
          Row{merged_[emit_part_].key(emit_pos_++), 1});
    }
    ++emit_part_;
    emit_pos_ = 0;
  }
  return std::optional<Row>();
}

Status ParallelDedupOp::NextBatchImpl(RowBatch& out) {
  while (!out.full()) {
    if (emit_part_ >= merged_.size()) return Status::OK();
    if (emit_pos_ >= merged_[emit_part_].size()) {
      ++emit_part_;
      emit_pos_ = 0;
      continue;
    }
    Row& slot = out.AppendSlot();
    slot.tuple = merged_[emit_part_].key(emit_pos_++);
    slot.count = 1;
  }
  return Status::OK();
}

void ParallelDedupOp::CloseImpl() {
  lane_seen_.clear();
  merged_.clear();
  emit_part_ = 0;
  emit_pos_ = 0;
  child_->Close();
}

}  // namespace parallel
}  // namespace mra
