// Scalar expressions over the attributes of one tuple.
//
// These realise two constructs of the paper: the selection condition φ of
// Definition 3.1 ("a function from dom(ℰ) into the boolean domain") and the
// arithmetic expressions e_i of the extended projection of Definition 3.4
// ("functions from dom(ℰ) into a basic domain").
//
// Expression trees are immutable and shared (ExprPtr = shared_ptr<const …>);
// the optimizer rewrites by rebuilding.

#ifndef MRA_EXPR_SCALAR_EXPR_H_
#define MRA_EXPR_SCALAR_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "mra/common/result.h"
#include "mra/core/schema.h"
#include "mra/core/tuple.h"
#include "mra/core/value.h"

namespace mra {

class ScalarExpr;
/// Shared immutable expression handle.
using ExprPtr = std::shared_ptr<const ScalarExpr>;

enum class ExprKind : uint8_t { kAttrRef, kLiteral, kUnary, kBinary };

enum class UnaryOp : uint8_t { kNeg, kNot };

enum class BinaryOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

/// True for =, <>, <, <=, >, >=.
bool IsComparison(BinaryOp op);
/// True for +, -, *, /, %.
bool IsArithmetic(BinaryOp op);
/// Display form: "+", "<=", "and", ….
std::string_view BinaryOpName(BinaryOp op);

/// Abstract scalar expression node.
class ScalarExpr {
 public:
  virtual ~ScalarExpr() = default;

  ExprKind kind() const { return kind_; }

  /// Static type of this expression over tuples of `input`; TypeError /
  /// InvalidArgument on mismatch.
  virtual Result<Type> Infer(const RelationSchema& input) const = 0;

  /// Evaluates over one tuple.  The tuple must conform to the schema this
  /// expression was type-checked against; runtime failures (division by
  /// zero) return EvalError.
  virtual Result<Value> Eval(const Tuple& tuple) const = 0;

  /// Display form using the paper's 1-based %i attribute notation.
  virtual std::string ToString() const = 0;

 protected:
  explicit ScalarExpr(ExprKind kind) : kind_(kind) {}

 private:
  ExprKind kind_;
};

/// %i — reference to the i-th attribute of the input tuple (0-based here;
/// printed 1-based as in the paper).
class AttrRefExpr final : public ScalarExpr {
 public:
  explicit AttrRefExpr(size_t index)
      : ScalarExpr(ExprKind::kAttrRef), index_(index) {}

  size_t index() const { return index_; }

  Result<Type> Infer(const RelationSchema& input) const override;
  Result<Value> Eval(const Tuple& tuple) const override;
  std::string ToString() const override;

 private:
  size_t index_;
};

/// A constant of one of the atomic domains.
class LiteralExpr final : public ScalarExpr {
 public:
  explicit LiteralExpr(Value value)
      : ScalarExpr(ExprKind::kLiteral), value_(std::move(value)) {}

  const Value& value() const { return value_; }

  Result<Type> Infer(const RelationSchema& input) const override;
  Result<Value> Eval(const Tuple& tuple) const override;
  std::string ToString() const override;

 private:
  Value value_;
};

/// Unary minus (numeric) and logical not.
class UnaryExpr final : public ScalarExpr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : ScalarExpr(ExprKind::kUnary), op_(op), operand_(std::move(operand)) {}

  UnaryOp op() const { return op_; }
  const ExprPtr& operand() const { return operand_; }

  Result<Type> Infer(const RelationSchema& input) const override;
  Result<Value> Eval(const Tuple& tuple) const override;
  std::string ToString() const override;

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

/// Arithmetic, comparison and boolean connectives.
///
/// Typing rules: arithmetic requires numeric operands and promotes through
/// int < decimal < real (plus date ± int and date − date); comparisons
/// require two numerics or two values of one domain; and/or require
/// booleans.  Integer division truncates; division by zero is an EvalError.
class BinaryExpr final : public ScalarExpr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : ScalarExpr(ExprKind::kBinary),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  BinaryOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

  Result<Type> Infer(const RelationSchema& input) const override;
  Result<Value> Eval(const Tuple& tuple) const override;
  std::string ToString() const override;

 private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

// --- Construction helpers (the public builder API). ---

/// %(\p index + 1) — 0-based attribute reference.
ExprPtr Attr(size_t index);
ExprPtr Lit(Value value);
ExprPtr Lit(int64_t v);
ExprPtr Lit(double v);
ExprPtr Lit(const char* v);
ExprPtr Lit(bool v);
ExprPtr Neg(ExprPtr e);
ExprPtr Not(ExprPtr e);
ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);
ExprPtr Mod(ExprPtr a, ExprPtr b);
ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);

// --- Analysis and rewriting helpers used by the optimizer. ---

/// Collects the 0-based attribute indexes referenced by `expr`.
void CollectAttrs(const ExprPtr& expr, std::set<size_t>* out);
std::set<size_t> AttrsUsed(const ExprPtr& expr);

/// True when the expression references no attributes.
bool IsConstantExpr(const ExprPtr& expr);

/// Rebuilds `expr` with every attribute index i replaced by mapping[i].
/// Indexes missing from the mapping are a checked error (callers must
/// establish coverage first via AttrsUsed).
ExprPtr RemapAttrs(const ExprPtr& expr,
                   const std::vector<size_t>& mapping);

/// Rebuilds `expr` with every attribute index shifted by `delta` (may be
/// negative; underflow is a checked error).
ExprPtr ShiftAttrs(const ExprPtr& expr, int64_t delta);

/// Rebuilds `expr` substituting each attribute reference %i by
/// substitutions[i] (used to push a selection through an extended
/// projection).
ExprPtr SubstituteAttrs(const ExprPtr& expr,
                        const std::vector<ExprPtr>& substitutions);

/// Splits a conjunction a AND b AND … into its conjuncts.
void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out);
/// Rebuilds a conjunction from conjuncts; empty input yields literal true.
ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts);

/// Evaluates constant sub-expressions.  Type errors and runtime errors
/// (e.g. division by zero) are left in place for normal evaluation to
/// report; folding never changes semantics.
ExprPtr FoldConstants(const ExprPtr& expr);

/// Structural equality of expression trees.
bool ExprEquals(const ExprPtr& a, const ExprPtr& b);

}  // namespace mra

#endif  // MRA_EXPR_SCALAR_EXPR_H_
