#include "mra/expr/scalar_expr.h"

#include <sstream>

namespace mra {

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArithmetic(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return true;
    default:
      return false;
  }
}

std::string_view BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
  }
  return "?";
}

// --- Type inference. ---

Result<Type> AttrRefExpr::Infer(const RelationSchema& input) const {
  if (index_ >= input.arity()) {
    return Status::InvalidArgument(
        "attribute %" + std::to_string(index_ + 1) +
        " out of range for schema " + input.ToString());
  }
  return input.TypeOf(index_);
}

Result<Type> LiteralExpr::Infer(const RelationSchema&) const {
  return value_.type();
}

Result<Type> UnaryExpr::Infer(const RelationSchema& input) const {
  MRA_ASSIGN_OR_RETURN(Type t, operand_->Infer(input));
  switch (op_) {
    case UnaryOp::kNeg:
      if (!t.IsNumeric()) {
        return Status::TypeError("unary - requires a numeric operand, got " +
                                 t.ToString() + " in " + ToString());
      }
      return t;
    case UnaryOp::kNot:
      if (t.kind() != TypeKind::kBool) {
        return Status::TypeError("not requires a boolean operand, got " +
                                 t.ToString() + " in " + ToString());
      }
      return t;
  }
  return Status::Internal("bad unary op");
}

Result<Type> BinaryExpr::Infer(const RelationSchema& input) const {
  MRA_ASSIGN_OR_RETURN(Type lt, lhs_->Infer(input));
  MRA_ASSIGN_OR_RETURN(Type rt, rhs_->Infer(input));
  if (IsArithmetic(op_)) {
    if (op_ == BinaryOp::kMod) {
      if (lt.kind() != TypeKind::kInt || rt.kind() != TypeKind::kInt) {
        return Status::TypeError("%% requires int operands in " + ToString());
      }
      return Type::Int();
    }
    // Date arithmetic: date ± int, date − date.
    if (lt.kind() == TypeKind::kDate || rt.kind() == TypeKind::kDate) {
      if (op_ == BinaryOp::kAdd && lt.kind() == TypeKind::kDate &&
          rt.kind() == TypeKind::kInt) {
        return Type::Date();
      }
      if (op_ == BinaryOp::kSub && lt.kind() == TypeKind::kDate &&
          rt.kind() == TypeKind::kInt) {
        return Type::Date();
      }
      if (op_ == BinaryOp::kSub && lt.kind() == TypeKind::kDate &&
          rt.kind() == TypeKind::kDate) {
        return Type::Int();
      }
      return Status::TypeError("unsupported date arithmetic in " + ToString());
    }
    if (!lt.IsNumeric() || !rt.IsNumeric()) {
      return Status::TypeError("arithmetic requires numeric operands, got " +
                               lt.ToString() + " and " + rt.ToString() +
                               " in " + ToString());
    }
    return Type::CommonNumeric(lt, rt);
  }
  if (IsComparison(op_)) {
    bool comparable = (lt.IsNumeric() && rt.IsNumeric()) || lt == rt;
    if (!comparable) {
      return Status::TypeError("cannot compare " + lt.ToString() + " with " +
                               rt.ToString() + " in " + ToString());
    }
    return Type::Bool();
  }
  // and / or.
  if (lt.kind() != TypeKind::kBool || rt.kind() != TypeKind::kBool) {
    return Status::TypeError("boolean connective requires bool operands in " +
                             ToString());
  }
  return Type::Bool();
}

// --- Display. ---

std::string AttrRefExpr::ToString() const {
  return "%" + std::to_string(index_ + 1);
}

std::string LiteralExpr::ToString() const { return value_.ToString(); }

std::string UnaryExpr::ToString() const {
  switch (op_) {
    case UnaryOp::kNeg:
      return "(-" + operand_->ToString() + ")";
    case UnaryOp::kNot:
      return "(not " + operand_->ToString() + ")";
  }
  return "?";
}

std::string BinaryExpr::ToString() const {
  std::ostringstream out;
  out << "(" << lhs_->ToString() << " " << BinaryOpName(op_) << " "
      << rhs_->ToString() << ")";
  return out.str();
}

// --- Builders. ---

ExprPtr Attr(size_t index) { return std::make_shared<AttrRefExpr>(index); }
ExprPtr Lit(Value value) {
  return std::make_shared<LiteralExpr>(std::move(value));
}
ExprPtr Lit(int64_t v) { return Lit(Value::Int(v)); }
ExprPtr Lit(double v) { return Lit(Value::Real(v)); }
ExprPtr Lit(const char* v) { return Lit(Value::Str(v)); }
ExprPtr Lit(bool v) { return Lit(Value::Bool(v)); }
ExprPtr Neg(ExprPtr e) {
  return std::make_shared<UnaryExpr>(UnaryOp::kNeg, std::move(e));
}
ExprPtr Not(ExprPtr e) {
  return std::make_shared<UnaryExpr>(UnaryOp::kNot, std::move(e));
}

namespace {
ExprPtr MakeBinary(BinaryOp op, ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(op, std::move(a), std::move(b));
}
}  // namespace

ExprPtr Add(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kAdd, std::move(a), std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kSub, std::move(a), std::move(b));
}
ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kMul, std::move(a), std::move(b));
}
ExprPtr Div(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kDiv, std::move(a), std::move(b));
}
ExprPtr Mod(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kMod, std::move(a), std::move(b));
}
ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kEq, std::move(a), std::move(b));
}
ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kNe, std::move(a), std::move(b));
}
ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kLt, std::move(a), std::move(b));
}
ExprPtr Le(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kLe, std::move(a), std::move(b));
}
ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kGt, std::move(a), std::move(b));
}
ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kGe, std::move(a), std::move(b));
}
ExprPtr And(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kAnd, std::move(a), std::move(b));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  return MakeBinary(BinaryOp::kOr, std::move(a), std::move(b));
}

// --- Analysis and rewriting. ---

void CollectAttrs(const ExprPtr& expr, std::set<size_t>* out) {
  switch (expr->kind()) {
    case ExprKind::kAttrRef:
      out->insert(static_cast<const AttrRefExpr&>(*expr).index());
      return;
    case ExprKind::kLiteral:
      return;
    case ExprKind::kUnary:
      CollectAttrs(static_cast<const UnaryExpr&>(*expr).operand(), out);
      return;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(*expr);
      CollectAttrs(b.lhs(), out);
      CollectAttrs(b.rhs(), out);
      return;
    }
  }
}

std::set<size_t> AttrsUsed(const ExprPtr& expr) {
  std::set<size_t> out;
  CollectAttrs(expr, &out);
  return out;
}

bool IsConstantExpr(const ExprPtr& expr) { return AttrsUsed(expr).empty(); }

namespace {

// Generic rebuild: applies `leaf` to each attribute reference.
template <typename LeafFn>
ExprPtr RebuildAttrs(const ExprPtr& expr, const LeafFn& leaf) {
  switch (expr->kind()) {
    case ExprKind::kAttrRef:
      return leaf(static_cast<const AttrRefExpr&>(*expr).index());
    case ExprKind::kLiteral:
      return expr;
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(*expr);
      ExprPtr child = RebuildAttrs(u.operand(), leaf);
      if (child == u.operand()) return expr;
      return std::make_shared<UnaryExpr>(u.op(), std::move(child));
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(*expr);
      ExprPtr l = RebuildAttrs(b.lhs(), leaf);
      ExprPtr r = RebuildAttrs(b.rhs(), leaf);
      if (l == b.lhs() && r == b.rhs()) return expr;
      return std::make_shared<BinaryExpr>(b.op(), std::move(l), std::move(r));
    }
  }
  MRA_CHECK(false) << "unreachable";
  return expr;
}

}  // namespace

ExprPtr RemapAttrs(const ExprPtr& expr, const std::vector<size_t>& mapping) {
  return RebuildAttrs(expr, [&](size_t i) -> ExprPtr {
    MRA_CHECK_LT(i, mapping.size()) << "RemapAttrs: unmapped attribute";
    return Attr(mapping[i]);
  });
}

ExprPtr ShiftAttrs(const ExprPtr& expr, int64_t delta) {
  return RebuildAttrs(expr, [&](size_t i) -> ExprPtr {
    int64_t shifted = static_cast<int64_t>(i) + delta;
    MRA_CHECK_GE(shifted, 0) << "ShiftAttrs underflow";
    return Attr(static_cast<size_t>(shifted));
  });
}

ExprPtr SubstituteAttrs(const ExprPtr& expr,
                        const std::vector<ExprPtr>& substitutions) {
  return RebuildAttrs(expr, [&](size_t i) -> ExprPtr {
    MRA_CHECK_LT(i, substitutions.size())
        << "SubstituteAttrs: no substitution for attribute";
    return substitutions[i];
  });
}

void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind() == ExprKind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(*expr);
    if (b.op() == BinaryOp::kAnd) {
      SplitConjuncts(b.lhs(), out);
      SplitConjuncts(b.rhs(), out);
      return;
    }
  }
  out->push_back(expr);
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return Lit(true);
  ExprPtr result = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    result = And(std::move(result), conjuncts[i]);
  }
  return result;
}

ExprPtr FoldConstants(const ExprPtr& expr) {
  switch (expr->kind()) {
    case ExprKind::kAttrRef:
    case ExprKind::kLiteral:
      return expr;
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(*expr);
      ExprPtr child = FoldConstants(u.operand());
      ExprPtr folded =
          child == u.operand()
              ? expr
              : std::make_shared<UnaryExpr>(u.op(), child);
      if (child->kind() == ExprKind::kLiteral) {
        Result<Value> v = folded->Eval(Tuple{});
        if (v.ok()) return Lit(std::move(v).value());
      }
      return folded;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(*expr);
      ExprPtr l = FoldConstants(b.lhs());
      ExprPtr r = FoldConstants(b.rhs());
      ExprPtr folded = (l == b.lhs() && r == b.rhs())
                           ? expr
                           : std::make_shared<BinaryExpr>(b.op(), l, r);
      if (l->kind() == ExprKind::kLiteral &&
          r->kind() == ExprKind::kLiteral) {
        Result<Value> v = folded->Eval(Tuple{});
        if (v.ok()) return Lit(std::move(v).value());
        // Runtime errors (1/0) stay unfolded so evaluation reports them.
        return folded;
      }
      // Boolean short-circuit simplification with a constant side.
      if (b.op() == BinaryOp::kAnd || b.op() == BinaryOp::kOr) {
        auto bool_lit = [](const ExprPtr& e, bool* out) {
          if (e->kind() != ExprKind::kLiteral) return false;
          const Value& v = static_cast<const LiteralExpr&>(*e).value();
          if (v.kind() != TypeKind::kBool) return false;
          *out = v.bool_value();
          return true;
        };
        bool lv;
        if (bool_lit(l, &lv)) {
          if (b.op() == BinaryOp::kAnd) return lv ? r : Lit(false);
          return lv ? Lit(true) : r;
        }
        bool rv;
        if (bool_lit(r, &rv)) {
          if (b.op() == BinaryOp::kAnd) return rv ? l : Lit(false);
          return rv ? Lit(true) : l;
        }
      }
      return folded;
    }
  }
  MRA_CHECK(false) << "unreachable";
  return expr;
}

bool ExprEquals(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case ExprKind::kAttrRef:
      return static_cast<const AttrRefExpr&>(*a).index() ==
             static_cast<const AttrRefExpr&>(*b).index();
    case ExprKind::kLiteral: {
      const Value& va = static_cast<const LiteralExpr&>(*a).value();
      const Value& vb = static_cast<const LiteralExpr&>(*b).value();
      return va.kind() == vb.kind() && va.Equals(vb);
    }
    case ExprKind::kUnary: {
      const auto& ua = static_cast<const UnaryExpr&>(*a);
      const auto& ub = static_cast<const UnaryExpr&>(*b);
      return ua.op() == ub.op() && ExprEquals(ua.operand(), ub.operand());
    }
    case ExprKind::kBinary: {
      const auto& ba = static_cast<const BinaryExpr&>(*a);
      const auto& bb = static_cast<const BinaryExpr&>(*b);
      return ba.op() == bb.op() && ExprEquals(ba.lhs(), bb.lhs()) &&
             ExprEquals(ba.rhs(), bb.rhs());
    }
  }
  return false;
}

}  // namespace mra
