// Evaluation conveniences layered over ScalarExpr::Eval.

#ifndef MRA_EXPR_EVAL_H_
#define MRA_EXPR_EVAL_H_

#include <string>
#include <vector>

#include "mra/expr/scalar_expr.h"

namespace mra {

/// Evaluates a selection condition φ over one tuple (Definition 3.1 treats φ
/// as a function into the boolean domain; a non-boolean result here means the
/// caller skipped type checking and is reported as TypeError).
Result<bool> EvalPredicate(const ScalarExpr& pred, const Tuple& tuple);

/// Type-checks `pred` against `input` and verifies it is boolean.
Status CheckPredicate(const ExprPtr& pred, const RelationSchema& input);

/// Infers the output schema of an extended projection π_(e1,…,en)
/// (Definition 3.4): one attribute per expression.  Attribute names are
/// taken from `names` when provided, else synthesised ("e1", "e2", … with
/// plain attribute references keeping their input names).
Result<RelationSchema> InferProjectionSchema(
    const std::vector<ExprPtr>& exprs, const RelationSchema& input,
    const std::vector<std::string>& names = {});

/// Applies an extended projection to one tuple: [e1(x), …, en(x)]
/// (Definition 3.4, square-bracket tuple construction).
Result<Tuple> ProjectTuple(const std::vector<ExprPtr>& exprs,
                           const Tuple& tuple);

}  // namespace mra

#endif  // MRA_EXPR_EVAL_H_
