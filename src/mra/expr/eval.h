// Evaluation conveniences layered over ScalarExpr::Eval, plus the
// batch-amortized fast paths the chunked executor compiles once per
// operator and applies per row without re-walking the expression tree.

#ifndef MRA_EXPR_EVAL_H_
#define MRA_EXPR_EVAL_H_

#include <optional>
#include <string>
#include <vector>

#include "mra/expr/scalar_expr.h"

namespace mra {

/// Evaluates a selection condition φ over one tuple (Definition 3.1 treats φ
/// as a function into the boolean domain; a non-boolean result here means the
/// caller skipped type checking and is reported as TypeError).
Result<bool> EvalPredicate(const ScalarExpr& pred, const Tuple& tuple);

/// Type-checks `pred` against `input` and verifies it is boolean.
Status CheckPredicate(const ExprPtr& pred, const RelationSchema& input);

/// Infers the output schema of an extended projection π_(e1,…,en)
/// (Definition 3.4): one attribute per expression.  Attribute names are
/// taken from `names` when provided, else synthesised ("e1", "e2", … with
/// plain attribute references keeping their input names).
Result<RelationSchema> InferProjectionSchema(
    const std::vector<ExprPtr>& exprs, const RelationSchema& input,
    const std::vector<std::string>& names = {});

/// Applies an extended projection to one tuple: [e1(x), …, en(x)]
/// (Definition 3.4, square-bracket tuple construction).
Result<Tuple> ProjectTuple(const std::vector<ExprPtr>& exprs,
                           const Tuple& tuple);

/// A selection condition pre-lowered to a flat list of `%i op literal`
/// comparisons, for the batch executor's hot loop.  Compile() accepts
/// conjunctions of comparisons between an attribute reference and a
/// literal of the *same* domain (so Value::Compare applies directly, with
/// no numeric promotion and no per-row type dispatch); anything else —
/// disjunctions, attr-attr comparisons, arithmetic, mixed-domain
/// comparisons needing promotion — declines, and the caller falls back to
/// EvalPredicate on the full tree.  Matching a compiled predicate cannot
/// fail: every condition Compile() accepts is total over schema-conformant
/// tuples, which is what lets the batch loop skip Result plumbing per row.
class CompiledPredicate {
 public:
  /// Lowers `pred` (type-checked against `input`) into comparison terms;
  /// nullopt when the shape or domains do not fit the fast path.
  static std::optional<CompiledPredicate> Compile(const ExprPtr& pred,
                                                  const RelationSchema& input);

  /// True when the tuple satisfies every term.
  bool Matches(const Tuple& tuple) const {
    for (const Term& term : terms_) {
      int c = tuple.at(term.attr).Compare(term.literal);
      bool ok;
      switch (term.op) {
        case BinaryOp::kEq: ok = c == 0; break;
        case BinaryOp::kNe: ok = c != 0; break;
        case BinaryOp::kLt: ok = c < 0; break;
        case BinaryOp::kLe: ok = c <= 0; break;
        case BinaryOp::kGt: ok = c > 0; break;
        case BinaryOp::kGe: ok = c >= 0; break;
        default: ok = false; break;
      }
      if (!ok) return false;
    }
    return true;
  }

  size_t num_terms() const { return terms_.size(); }

 private:
  struct Term {
    size_t attr;
    BinaryOp op;  // A comparison; the literal is the right operand.
    Value literal;
  };

  explicit CompiledPredicate(std::vector<Term> terms)
      : terms_(std::move(terms)) {}

  std::vector<Term> terms_;
};

/// The attribute indexes of a projection whose expressions are all plain
/// %i references (so applying it is Tuple::Project — no evaluation, no
/// failure path); nullopt as soon as any expression computes.  Indexes are
/// validated against `input_arity`.
std::optional<std::vector<size_t>> AttrOnlyProjection(
    const std::vector<ExprPtr>& exprs, size_t input_arity);

}  // namespace mra

#endif  // MRA_EXPR_EVAL_H_
