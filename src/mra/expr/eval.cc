#include "mra/expr/eval.h"

#include <cmath>

namespace mra {

namespace {

// Decimal arithmetic on the scaled representation, using 128-bit
// intermediates so that mul/div do not overflow prematurely.
Result<Value> DecimalArith(BinaryOp op, int64_t a, int64_t b) {
  switch (op) {
    case BinaryOp::kAdd:
      return Value::DecimalScaled(a + b);
    case BinaryOp::kSub:
      return Value::DecimalScaled(a - b);
    case BinaryOp::kMul: {
      __int128 p = static_cast<__int128>(a) * b / kDecimalScale;
      return Value::DecimalScaled(static_cast<int64_t>(p));
    }
    case BinaryOp::kDiv: {
      if (b == 0) return Status::EvalError("decimal division by zero");
      __int128 q = static_cast<__int128>(a) * kDecimalScale / b;
      return Value::DecimalScaled(static_cast<int64_t>(q));
    }
    default:
      return Status::Internal("bad decimal op");
  }
}

// Promotes v to the numeric kind `target` (int < decimal < real).
Value PromoteNumeric(const Value& v, TypeKind target) {
  if (v.kind() == target) return v;
  switch (target) {
    case TypeKind::kDecimal:
      MRA_CHECK(v.kind() == TypeKind::kInt);
      return Value::Decimal(v.int_value());
    case TypeKind::kReal:
      return Value::Real(v.AsReal());
    default:
      MRA_CHECK(false) << "bad numeric promotion target";
      return v;
  }
}

Result<Value> NumericArith(BinaryOp op, const Value& lhs, const Value& rhs) {
  TypeKind common =
      Type::CommonNumeric(lhs.type(), rhs.type()).kind();
  Value a = PromoteNumeric(lhs, common);
  Value b = PromoteNumeric(rhs, common);
  switch (common) {
    case TypeKind::kInt: {
      int64_t x = a.int_value(), y = b.int_value();
      switch (op) {
        case BinaryOp::kAdd:
          return Value::Int(x + y);
        case BinaryOp::kSub:
          return Value::Int(x - y);
        case BinaryOp::kMul:
          return Value::Int(x * y);
        case BinaryOp::kDiv:
          if (y == 0) return Status::EvalError("integer division by zero");
          return Value::Int(x / y);
        case BinaryOp::kMod:
          if (y == 0) return Status::EvalError("integer modulo by zero");
          return Value::Int(x % y);
        default:
          return Status::Internal("bad int op");
      }
    }
    case TypeKind::kDecimal:
      return DecimalArith(op, a.decimal_scaled(), b.decimal_scaled());
    case TypeKind::kReal: {
      double x = a.real_value(), y = b.real_value();
      switch (op) {
        case BinaryOp::kAdd:
          return Value::Real(x + y);
        case BinaryOp::kSub:
          return Value::Real(x - y);
        case BinaryOp::kMul:
          return Value::Real(x * y);
        case BinaryOp::kDiv:
          if (y == 0.0) return Status::EvalError("real division by zero");
          return Value::Real(x / y);
        default:
          return Status::Internal("bad real op");
      }
    }
    default:
      return Status::Internal("bad numeric kind");
  }
}

// Three-way comparison with numeric promotion; non-numeric kinds must match.
Result<int> CompareValues(const Value& lhs, const Value& rhs) {
  if (lhs.kind() == rhs.kind()) return lhs.Compare(rhs);
  if (lhs.type().IsNumeric() && rhs.type().IsNumeric()) {
    TypeKind common = Type::CommonNumeric(lhs.type(), rhs.type()).kind();
    return PromoteNumeric(lhs, common).Compare(PromoteNumeric(rhs, common));
  }
  return Status::TypeError("cannot compare " + lhs.type().ToString() +
                           " with " + rhs.type().ToString());
}

}  // namespace

Result<Value> AttrRefExpr::Eval(const Tuple& tuple) const {
  if (index_ >= tuple.arity()) {
    return Status::EvalError("attribute %" + std::to_string(index_ + 1) +
                             " out of range for tuple " + tuple.ToString());
  }
  return tuple.at(index_);
}

Result<Value> LiteralExpr::Eval(const Tuple&) const { return value_; }

Result<Value> UnaryExpr::Eval(const Tuple& tuple) const {
  MRA_ASSIGN_OR_RETURN(Value v, operand_->Eval(tuple));
  switch (op_) {
    case UnaryOp::kNeg:
      switch (v.kind()) {
        case TypeKind::kInt:
          return Value::Int(-v.int_value());
        case TypeKind::kDecimal:
          return Value::DecimalScaled(-v.decimal_scaled());
        case TypeKind::kReal:
          return Value::Real(-v.real_value());
        default:
          return Status::TypeError("unary - on non-numeric value " +
                                   v.ToString());
      }
    case UnaryOp::kNot:
      if (v.kind() != TypeKind::kBool) {
        return Status::TypeError("not on non-boolean value " + v.ToString());
      }
      return Value::Bool(!v.bool_value());
  }
  return Status::Internal("bad unary op");
}

Result<Value> BinaryExpr::Eval(const Tuple& tuple) const {
  // Short-circuit the boolean connectives.
  if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
    MRA_ASSIGN_OR_RETURN(Value l, lhs_->Eval(tuple));
    if (l.kind() != TypeKind::kBool) {
      return Status::TypeError("boolean connective on non-boolean value " +
                               l.ToString());
    }
    if (op_ == BinaryOp::kAnd && !l.bool_value()) return Value::Bool(false);
    if (op_ == BinaryOp::kOr && l.bool_value()) return Value::Bool(true);
    MRA_ASSIGN_OR_RETURN(Value r, rhs_->Eval(tuple));
    if (r.kind() != TypeKind::kBool) {
      return Status::TypeError("boolean connective on non-boolean value " +
                               r.ToString());
    }
    return r;
  }

  MRA_ASSIGN_OR_RETURN(Value l, lhs_->Eval(tuple));
  MRA_ASSIGN_OR_RETURN(Value r, rhs_->Eval(tuple));

  if (IsComparison(op_)) {
    MRA_ASSIGN_OR_RETURN(int c, CompareValues(l, r));
    switch (op_) {
      case BinaryOp::kEq:
        return Value::Bool(c == 0);
      case BinaryOp::kNe:
        return Value::Bool(c != 0);
      case BinaryOp::kLt:
        return Value::Bool(c < 0);
      case BinaryOp::kLe:
        return Value::Bool(c <= 0);
      case BinaryOp::kGt:
        return Value::Bool(c > 0);
      case BinaryOp::kGe:
        return Value::Bool(c >= 0);
      default:
        break;
    }
    return Status::Internal("bad comparison op");
  }

  // Date arithmetic.
  if (l.kind() == TypeKind::kDate || r.kind() == TypeKind::kDate) {
    if (op_ == BinaryOp::kAdd && l.kind() == TypeKind::kDate &&
        r.kind() == TypeKind::kInt) {
      return Value::Date(l.date_days() + static_cast<int32_t>(r.int_value()));
    }
    if (op_ == BinaryOp::kSub && l.kind() == TypeKind::kDate &&
        r.kind() == TypeKind::kInt) {
      return Value::Date(l.date_days() - static_cast<int32_t>(r.int_value()));
    }
    if (op_ == BinaryOp::kSub && l.kind() == TypeKind::kDate &&
        r.kind() == TypeKind::kDate) {
      return Value::Int(static_cast<int64_t>(l.date_days()) - r.date_days());
    }
    return Status::TypeError("unsupported date arithmetic in " + ToString());
  }

  if (!l.type().IsNumeric() || !r.type().IsNumeric()) {
    return Status::TypeError("arithmetic on non-numeric values " +
                             l.ToString() + ", " + r.ToString());
  }
  return NumericArith(op_, l, r);
}

Result<bool> EvalPredicate(const ScalarExpr& pred, const Tuple& tuple) {
  MRA_ASSIGN_OR_RETURN(Value v, pred.Eval(tuple));
  if (v.kind() != TypeKind::kBool) {
    return Status::TypeError("selection condition evaluated to non-boolean " +
                             v.ToString());
  }
  return v.bool_value();
}

Status CheckPredicate(const ExprPtr& pred, const RelationSchema& input) {
  MRA_ASSIGN_OR_RETURN(Type t, pred->Infer(input));
  if (t.kind() != TypeKind::kBool) {
    return Status::TypeError("selection condition " + pred->ToString() +
                             " has type " + t.ToString() + ", expected bool");
  }
  return Status::OK();
}

Result<RelationSchema> InferProjectionSchema(
    const std::vector<ExprPtr>& exprs, const RelationSchema& input,
    const std::vector<std::string>& names) {
  if (exprs.empty()) {
    return Status::InvalidArgument(
        "projection requires at least one expression (Definition 2.4: n >= 1)");
  }
  if (!names.empty() && names.size() != exprs.size()) {
    return Status::InvalidArgument(
        "projection name list size does not match expression list");
  }
  std::vector<Attribute> attrs;
  attrs.reserve(exprs.size());
  for (size_t i = 0; i < exprs.size(); ++i) {
    MRA_ASSIGN_OR_RETURN(Type t, exprs[i]->Infer(input));
    std::string name;
    if (!names.empty()) {
      name = names[i];
    } else if (exprs[i]->kind() == ExprKind::kAttrRef) {
      name = input.attribute(static_cast<const AttrRefExpr&>(*exprs[i]).index())
                 .name;
    } else {
      name = "e" + std::to_string(i + 1);
    }
    attrs.push_back({std::move(name), t});
  }
  return RelationSchema(std::move(attrs));
}

Result<Tuple> ProjectTuple(const std::vector<ExprPtr>& exprs,
                           const Tuple& tuple) {
  std::vector<Value> values;
  values.reserve(exprs.size());
  for (const ExprPtr& e : exprs) {
    MRA_ASSIGN_OR_RETURN(Value v, e->Eval(tuple));
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

std::optional<CompiledPredicate> CompiledPredicate::Compile(
    const ExprPtr& pred, const RelationSchema& input) {
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(pred, &conjuncts);
  std::vector<Term> terms;
  terms.reserve(conjuncts.size());
  for (const ExprPtr& c : conjuncts) {
    // A literal `true` conjunct (CombineConjuncts' empty case) is vacuous.
    if (c->kind() == ExprKind::kLiteral) {
      const Value& v = static_cast<const LiteralExpr&>(*c).value();
      if (v.kind() == TypeKind::kBool && v.bool_value()) continue;
      return std::nullopt;
    }
    if (c->kind() != ExprKind::kBinary) return std::nullopt;
    const auto& b = static_cast<const BinaryExpr&>(*c);
    if (!IsComparison(b.op())) return std::nullopt;
    const ScalarExpr* attr_side = nullptr;
    const ScalarExpr* lit_side = nullptr;
    BinaryOp op = b.op();
    if (b.lhs()->kind() == ExprKind::kAttrRef &&
        b.rhs()->kind() == ExprKind::kLiteral) {
      attr_side = b.lhs().get();
      lit_side = b.rhs().get();
    } else if (b.lhs()->kind() == ExprKind::kLiteral &&
               b.rhs()->kind() == ExprKind::kAttrRef) {
      attr_side = b.rhs().get();
      lit_side = b.lhs().get();
      // Mirror the comparison so the attribute stays on the left.
      switch (op) {
        case BinaryOp::kLt: op = BinaryOp::kGt; break;
        case BinaryOp::kLe: op = BinaryOp::kGe; break;
        case BinaryOp::kGt: op = BinaryOp::kLt; break;
        case BinaryOp::kGe: op = BinaryOp::kLe; break;
        default: break;  // = and <> are symmetric.
      }
    } else {
      return std::nullopt;
    }
    size_t index = static_cast<const AttrRefExpr&>(*attr_side).index();
    const Value& literal = static_cast<const LiteralExpr&>(*lit_side).value();
    if (index >= input.arity()) return std::nullopt;
    // Same-domain only: a mixed numeric comparison (int attr vs decimal
    // literal) promotes before comparing, which Value::Compare does not.
    if (input.TypeOf(index) != literal.type()) return std::nullopt;
    terms.push_back(Term{index, op, literal});
  }
  return CompiledPredicate(std::move(terms));
}

std::optional<std::vector<size_t>> AttrOnlyProjection(
    const std::vector<ExprPtr>& exprs, size_t input_arity) {
  std::vector<size_t> indexes;
  indexes.reserve(exprs.size());
  for (const ExprPtr& e : exprs) {
    if (e->kind() != ExprKind::kAttrRef) return std::nullopt;
    size_t index = static_cast<const AttrRefExpr&>(*e).index();
    if (index >= input_arity) return std::nullopt;
    indexes.push_back(index);
  }
  return indexes;
}

}  // namespace mra
