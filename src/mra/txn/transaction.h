// Transactions (Definition 4.3) and the statement semantics of
// Definition 4.1 they execute.
//
// A Transaction is a copy-on-write overlay over the committed state D_t:
//  * reads resolve temporaries first, then modified working copies, then
//    the committed catalog — these are the intermediate states D^{t.i},
//    visible only inside the bracket;
//  * insert/delete/update replace a working copy (R ← … of Definition 4.1);
//  * assignment creates a temporary relation, removed at the bracket's end;
//  * Commit atomically installs D_{t+1} (and logs it when durable);
//  * Abort discards everything, leaving D_t untouched.

#ifndef MRA_TXN_TRANSACTION_H_
#define MRA_TXN_TRANSACTION_H_

#include <map>
#include <string>
#include <vector>

#include "mra/expr/scalar_expr.h"
#include "mra/txn/database.h"

namespace mra {

class Transaction final : public RelationProvider {
 public:
  ~Transaction() override;
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Reads through the overlay: temporaries, then working copies, then the
  /// committed state.  This is the view expressions evaluate against.
  Result<const Relation*> GetRelation(const std::string& name) const override;

  /// Statistics resolve against the committed state: snapshots describe
  /// D_t and simply read stale against the bracket's working copies, the
  /// same staleness contract as ordinary writes.  Temporaries have none.
  const stats::TableStatistics* GetStatistics(
      const std::string& name) const override;

  /// insert(R, E): R ← R ⊎ E (Definition 4.1).  `delta` must be
  /// schema-compatible with R.
  Status Insert(const std::string& name, const Relation& delta);

  /// delete(R, E): R ← R − E (Definition 4.1).
  Status Delete(const std::string& name, const Relation& delta);

  /// update(R, E, α): R ← (R − E) ⊎ π_α(R ∩ E) (Definition 4.1).  α must
  /// be structure-preserving: π_α(R) must have R's schema.
  Status Update(const std::string& name, const Relation& matched,
                const std::vector<ExprPtr>& alpha);

  /// R = E: binds a *new* temporary relational variable (Definition 4.1).
  /// The name must not collide with a database relation or an existing
  /// temporary; temporaries vanish at commit/abort.
  Status Assign(const std::string& name, Relation value);

  /// Ends the bracket, installing D_{t+1} atomically (and durably when the
  /// database has a directory).  The transaction becomes inactive.
  Status Commit();

  /// Ends the bracket discarding all effects; D_t remains current.
  Status Abort();

  bool active() const { return active_; }
  uint64_t id() const { return id_; }

  /// Names of temporaries created so far (for the REPL's introspection).
  std::vector<std::string> TemporaryNames() const;

 private:
  friend class Database;

  Transaction(Database* db, uint64_t id) : db_(db), id_(id) {}

  // Fetches the current working version of a database relation, copying it
  // into the overlay on first write.
  Result<Relation*> GetWritable(const std::string& name);

  Status CheckActive() const;

  Database* db_;
  uint64_t id_;
  bool active_ = true;
  std::map<std::string, Relation> working_;  // Modified database relations.
  std::map<std::string, Relation> temps_;    // Assignment targets.
};

}  // namespace mra

#endif  // MRA_TXN_TRANSACTION_H_
