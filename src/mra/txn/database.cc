#include "mra/txn/database.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>

#include "mra/fault/failpoint.h"
#include "mra/obs/metrics.h"
#include "mra/storage/plan_serializer.h"
#include "mra/storage/serializer.h"
#include "mra/txn/transaction.h"

namespace mra {

namespace {

// WAL record kinds.
constexpr uint8_t kRecCommit = 1;
constexpr uint8_t kRecCreateRelation = 2;
constexpr uint8_t kRecDropRelation = 3;
constexpr uint8_t kRecAddConstraint = 4;
constexpr uint8_t kRecDropConstraint = 5;
constexpr uint8_t kRecAnalyze = 6;

constexpr char kWalFile[] = "wal.log";
constexpr char kCheckpointFile[] = "checkpoint.mra";

Result<std::string> ReadFileContents(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("no file " + path);
  std::string contents;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::IoError("cannot read " + path);
  return contents;
}

/// fsyncs the directory containing `path`, making a just-renamed entry
/// durable (the rename itself lives in the directory, not the file).
Status SyncParentDir(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("cannot open directory " + dir + ": " +
                           std::strerror(errno));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("cannot fsync directory " + dir + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

/// Crash-safe file install: write to `path.tmp`, fsync the data, rename
/// over `path`, fsync the parent directory.  A crash at any point leaves
/// either the old file or the complete new one — never a partial image,
/// and never a rename that evaporates with the directory's page cache.
///
/// Failpoints: `checkpoint.write` (error / torn tmp image),
/// `checkpoint.sync`, `checkpoint.rename` (fails or aborts before the
/// rename), `checkpoint.dirsync` (after the rename, before the directory
/// fsync).
Status WriteFileAtomically(const std::string& path,
                           const std::string& contents) {
  static fault::Failpoint* fp_write =
      fault::FaultRegistry::Global().Get("checkpoint.write");
  static fault::Failpoint* fp_sync =
      fault::FaultRegistry::Global().Get("checkpoint.sync");
  static fault::Failpoint* fp_rename =
      fault::FaultRegistry::Global().Get("checkpoint.rename");
  static fault::Failpoint* fp_dirsync =
      fault::FaultRegistry::Global().Get("checkpoint.dirsync");

  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot create " + tmp);
  bool ok;
  fault::Failpoint::Outcome fo = fp_write->Hit();
  if (fo.kind == fault::ActionKind::kError) {
    std::fclose(f);
    return fp_write->InjectedError();
  }
  if (fo.kind == fault::ActionKind::kTorn) {
    size_t keep = std::min<size_t>(fo.keep_bytes, contents.size());
    std::fwrite(contents.data(), 1, keep, f);
    std::fclose(f);
    return fp_write->InjectedError();
  }
  ok = std::fwrite(contents.data(), 1, contents.size(), f) ==
       contents.size();
  ok = (std::fflush(f) == 0) && ok;
  // fsync the image before the rename: renaming first could install a
  // checkpoint whose bytes never reach the disk, and the subsequent WAL
  // truncate would then delete the only durable copy of the database.
  Status injected = fault::InjectIfArmed(fp_sync);
  ok = injected.ok() && (::fsync(::fileno(f)) == 0) && ok;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    return injected.ok() ? Status::IoError("cannot write " + tmp) : injected;
  }
  MRA_RETURN_IF_ERROR(fault::InjectIfArmed(fp_rename));
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return Status::IoError("cannot install " + path + ": " + ec.message());
  MRA_RETURN_IF_ERROR(fault::InjectIfArmed(fp_dirsync));
  return SyncParentDir(path);
}

}  // namespace

std::string Database::wal_path() const {
  return options_.directory + "/" + kWalFile;
}

std::string Database::checkpoint_path() const {
  return options_.directory + "/" + kCheckpointFile;
}

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  auto db = std::unique_ptr<Database>(new Database());
  db->options_ = std::move(options);
  if (db->durable()) {
    std::error_code ec;
    std::filesystem::create_directories(db->options_.directory, ec);
    if (ec) {
      return Status::IoError("cannot create database directory: " +
                             ec.message());
    }
    MRA_RETURN_IF_ERROR(db->Recover());
    MRA_ASSIGN_OR_RETURN(db->wal_, storage::WalWriter::Open(db->wal_path()));
  }
  return db;
}

Database::~Database() = default;

Status Database::Recover() {
  // 1. Load the newest checkpoint, if any (catalog image + constraints).
  bool checkpoint_loaded = false;
  Result<std::string> image = ReadFileContents(checkpoint_path());
  if (image.ok()) {
    checkpoint_loaded = true;
    storage::Decoder dec(*image);
    MRA_ASSIGN_OR_RETURN(std::string catalog_bytes, dec.GetString());
    MRA_ASSIGN_OR_RETURN(catalog_, storage::DecodeCatalog(catalog_bytes));
    MRA_ASSIGN_OR_RETURN(uint32_t n_constraints, dec.GetU32());
    for (uint32_t i = 0; i < n_constraints; ++i) {
      MRA_ASSIGN_OR_RETURN(std::string name, dec.GetString());
      MRA_ASSIGN_OR_RETURN(PlanPtr plan, storage::DecodePlan(&dec));
      constraints_.emplace(std::move(name), std::move(plan));
    }
    if (!dec.AtEnd()) {
      return Status::Corruption("trailing bytes in checkpoint image");
    }
  } else if (image.status().code() != StatusCode::kNotFound) {
    return image.status();
  }

  // 2. Replay intact WAL records.
  //
  // When a checkpoint image was loaded, a DDL record that is already
  // reflected in it is tolerated rather than treated as corruption: a
  // crash between the checkpoint's rename and the WAL truncate leaves a
  // log whose records are all already applied (commit records carry
  // absolute after-images, so re-installing them is naturally
  // idempotent; DDL replay must be made so).  Without a checkpoint the
  // WAL is the entire history and a duplicate create / missing drop is
  // genuine corruption.
  static obs::Counter* tolerated =
      obs::MetricsRegistry::Global().GetCounter("wal.replay.tolerated");
  MRA_ASSIGN_OR_RETURN(
      storage::WalReadResult wal,
      storage::ReadWal(wal_path(), options_.salvage_wal
                                       ? storage::Salvage::kPrefix
                                       : storage::Salvage::kNone));
  for (const std::string& record : wal.records) {
    storage::Decoder dec(record);
    MRA_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
    switch (kind) {
      case kRecCreateRelation: {
        MRA_ASSIGN_OR_RETURN(RelationSchema schema, dec.GetSchema());
        Status s = catalog_.CreateRelation(std::move(schema));
        if (!s.ok()) {
          if (!(checkpoint_loaded &&
                s.code() == StatusCode::kAlreadyExists)) {
            return s;
          }
          tolerated->Inc();
        }
        break;
      }
      case kRecDropRelation: {
        MRA_ASSIGN_OR_RETURN(std::string name, dec.GetString());
        Status s = catalog_.DropRelation(name);
        if (!s.ok()) {
          if (!(checkpoint_loaded && s.code() == StatusCode::kNotFound)) {
            return s;
          }
          tolerated->Inc();
        }
        break;
      }
      case kRecAddConstraint: {
        MRA_ASSIGN_OR_RETURN(std::string name, dec.GetString());
        MRA_ASSIGN_OR_RETURN(PlanPtr plan, storage::DecodePlan(&dec));
        constraints_[std::move(name)] = std::move(plan);
        break;
      }
      case kRecDropConstraint: {
        MRA_ASSIGN_OR_RETURN(std::string name, dec.GetString());
        if (constraints_.erase(name) == 0) {
          if (!checkpoint_loaded) {
            return Status::Corruption("WAL drops unknown constraint " + name);
          }
          tolerated->Inc();
        }
        break;
      }
      case kRecAnalyze: {
        MRA_ASSIGN_OR_RETURN(std::string name, dec.GetString());
        MRA_ASSIGN_OR_RETURN(stats::TableStatistics stats,
                             dec.GetStatistics());
        Status s = catalog_.SetStatistics(name, std::move(stats));
        if (!s.ok()) {
          if (!(checkpoint_loaded && s.code() == StatusCode::kNotFound)) {
            return s;
          }
          tolerated->Inc();
        }
        break;
      }
      case kRecCommit: {
        MRA_ASSIGN_OR_RETURN(uint64_t txn_id, dec.GetU64());
        MRA_ASSIGN_OR_RETURN(uint64_t time, dec.GetU64());
        MRA_ASSIGN_OR_RETURN(uint32_t n, dec.GetU32());
        for (uint32_t i = 0; i < n; ++i) {
          MRA_ASSIGN_OR_RETURN(Relation rel, dec.GetRelation());
          std::string name = rel.schema().name();
          Status s = catalog_.SetRelation(name, std::move(rel));
          if (!s.ok()) {
            // Already-applied region only: the relation was dropped
            // later in the same pre-checkpoint stretch, so its
            // after-image has nowhere to land — and needs none.
            if (!(checkpoint_loaded && s.code() == StatusCode::kNotFound)) {
              return s;
            }
            tolerated->Inc();
          }
        }
        catalog_.set_logical_time(std::max(catalog_.logical_time(), time));
        next_txn_id_ = std::max(next_txn_id_, txn_id + 1);
        break;
      }
      default:
        return Status::Corruption("unknown WAL record kind " +
                                  std::to_string(kind));
    }
    if (!dec.AtEnd()) {
      return Status::Corruption("trailing bytes in WAL record");
    }
  }

  // 3. If the log ended in a torn frame (or a salvage dropped a corrupt
  // suffix), chop the file back to its intact prefix *before* the writer
  // reopens it for appending — a fresh commit written after a partial
  // frame would make the whole log unreadable on the next recovery.
  if (wal.torn_tail || wal.salvaged) {
    MRA_RETURN_IF_ERROR(
        storage::TruncateWalToOffset(wal_path(), wal.valid_bytes));
  }
  return Status::OK();
}

Status Database::CreateRelation(RelationSchema schema) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (txn_active_) {
    return Status::TxnError(
        "DDL is not allowed inside a transaction bracket");
  }
  MRA_RETURN_IF_ERROR(catalog_.CreateRelation(schema));
  if (durable()) {
    Status s = AppendDdlRecord(kRecCreateRelation, schema, schema.name());
    if (!s.ok()) {
      // Keep memory and log consistent on failure.
      (void)catalog_.DropRelation(schema.name());
      return s;
    }
  }
  return Status::OK();
}

Status Database::DropRelation(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (txn_active_) {
    return Status::TxnError(
        "DDL is not allowed inside a transaction bracket");
  }
  MRA_ASSIGN_OR_RETURN(const Relation* existing, catalog_.GetRelation(name));
  Relation saved = *existing;
  MRA_RETURN_IF_ERROR(catalog_.DropRelation(name));
  if (durable()) {
    Status s = AppendDdlRecord(kRecDropRelation, RelationSchema{}, name);
    if (!s.ok()) {
      RelationSchema schema = saved.schema();
      (void)catalog_.CreateRelation(schema);
      (void)catalog_.SetRelation(name, std::move(saved));
      return s;
    }
  }
  return Status::OK();
}

Result<stats::TableStatistics> Database::Analyze(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (txn_active_) {
    return Status::TxnError(
        "ANALYZE is not allowed inside a transaction bracket");
  }
  static obs::Counter* analyzes =
      obs::MetricsRegistry::Global().GetCounter("stats.analyze_total");
  static obs::Histogram* duration =
      obs::MetricsRegistry::Global().GetHistogram("stats.analyze_us");
  auto start = std::chrono::steady_clock::now();
  MRA_ASSIGN_OR_RETURN(const Relation* rel, catalog_.GetRelation(name));
  stats::TableStatistics stats =
      stats::Analyze(*rel, catalog_.logical_time());
  if (durable()) {
    storage::Encoder enc;
    enc.PutU8(kRecAnalyze);
    enc.PutString(name);
    enc.PutStatistics(stats);
    MRA_RETURN_IF_ERROR(wal_.Append(enc.buffer(), options_.sync_commits));
  }
  MRA_RETURN_IF_ERROR(catalog_.SetStatistics(name, stats));
  analyzes->Inc();
  duration->Observe(static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return stats;
}

Status Database::AppendDdlRecord(uint8_t kind, const RelationSchema& schema,
                                 const std::string& name) {
  storage::Encoder enc;
  enc.PutU8(kind);
  if (kind == kRecCreateRelation) {
    enc.PutSchema(schema);
  } else {
    enc.PutString(name);
  }
  return wal_.Append(enc.buffer(), options_.sync_commits);
}

Status Database::AddConstraint(const std::string& name,
                               PlanPtr violation_query) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (txn_active_) {
    return Status::TxnError(
        "constraints cannot be registered inside a transaction bracket");
  }
  if (name.empty() || violation_query == nullptr) {
    return Status::InvalidArgument("constraint needs a name and a query");
  }
  if (constraints_.count(name) > 0) {
    return Status::AlreadyExists("constraint " + name + " already exists");
  }
  // The current state must already satisfy the constraint.
  MRA_ASSIGN_OR_RETURN(Relation violations,
                       EvaluatePlan(*violation_query, catalog_));
  if (!violations.empty()) {
    return Status::ConstraintViolation(
        "constraint " + name + " is violated by the current state (e.g. " +
        violations.begin()->first.ToString() + ")");
  }
  if (durable()) {
    storage::Encoder enc;
    enc.PutU8(kRecAddConstraint);
    enc.PutString(name);
    storage::EncodePlan(&enc, *violation_query);
    MRA_RETURN_IF_ERROR(wal_.Append(enc.buffer(), options_.sync_commits));
  }
  constraints_.emplace(name, std::move(violation_query));
  return Status::OK();
}

Status Database::DropConstraint(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (txn_active_) {
    return Status::TxnError(
        "constraints cannot be dropped inside a transaction bracket");
  }
  if (constraints_.count(name) == 0) {
    return Status::NotFound("no constraint named " + name);
  }
  if (durable()) {
    storage::Encoder enc;
    enc.PutU8(kRecDropConstraint);
    enc.PutString(name);
    MRA_RETURN_IF_ERROR(wal_.Append(enc.buffer(), options_.sync_commits));
  }
  constraints_.erase(name);
  return Status::OK();
}

std::vector<std::string> Database::ConstraintNames() const {
  std::vector<std::string> names;
  names.reserve(constraints_.size());
  for (const auto& [name, plan] : constraints_) names.push_back(name);
  return names;
}

Status Database::CheckConstraints(const RelationProvider& view) const {
  for (const auto& [name, plan] : constraints_) {
    MRA_ASSIGN_OR_RETURN(Relation violations, EvaluatePlan(*plan, view));
    if (!violations.empty()) {
      return Status::ConstraintViolation(
          "transaction would violate constraint " + name + " (e.g. " +
          violations.begin()->first.ToString() + ")");
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<Transaction>> Database::Begin(bool wait) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (txn_active_ && !wait) {
    return Status::TxnError(
        "a transaction is already active (serial isolation)");
  }
  txn_slot_cv_.wait(lock, [this] { return !txn_active_; });
  txn_active_ = true;
  return std::unique_ptr<Transaction>(new Transaction(this, next_txn_id_++));
}

Status Database::ApplyCommit(
    uint64_t txn_id, const std::map<std::string, Relation>& after_images) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  // Log first (write-ahead), then install in memory.
  if (durable()) {
    storage::Encoder enc;
    enc.PutU8(kRecCommit);
    enc.PutU64(txn_id);
    enc.PutU64(catalog_.logical_time() + 1);
    enc.PutU32(static_cast<uint32_t>(after_images.size()));
    for (const auto& [name, rel] : after_images) {
      enc.PutRelation(rel);
    }
    MRA_RETURN_IF_ERROR(wal_.Append(enc.buffer(), options_.sync_commits));
  }
  for (const auto& [name, rel] : after_images) {
    MRA_RETURN_IF_ERROR(catalog_.SetRelation(name, rel));
  }
  catalog_.AdvanceTime();
  txn_active_ = false;
  txn_slot_cv_.notify_all();
  return Status::OK();
}

void Database::EndTransaction() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  txn_active_ = false;
  txn_slot_cv_.notify_all();
}

Status Database::Checkpoint() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (!durable()) return Status::OK();
  if (txn_active_) {
    return Status::TxnError("cannot checkpoint while a transaction is active");
  }
  storage::Encoder image;
  std::string catalog_bytes = storage::EncodeCatalog(catalog_);
  image.PutString(catalog_bytes);
  image.PutU32(static_cast<uint32_t>(constraints_.size()));
  for (const auto& [name, plan] : constraints_) {
    image.PutString(name);
    storage::EncodePlan(&image, *plan);
  }
  MRA_RETURN_IF_ERROR(WriteFileAtomically(checkpoint_path(), image.buffer()));
  // A crash here (exercised via the wal.truncate failpoint) leaves the
  // new checkpoint installed with the old WAL intact; recovery's
  // tolerant replay converges back to this same state.
  static fault::Failpoint* fp_truncate =
      fault::FaultRegistry::Global().Get("wal.truncate");
  MRA_RETURN_IF_ERROR(fault::InjectIfArmed(fp_truncate));
  MRA_RETURN_IF_ERROR(storage::TruncateWal(wal_path()));
  obs::MetricsRegistry::Global().GetCounter("db.checkpoints")->Inc();
  return Status::OK();
}

}  // namespace mra
