#include "mra/txn/transaction.h"

#include <chrono>

#include "mra/algebra/ops.h"
#include "mra/obs/metrics.h"

namespace mra {

namespace {

obs::Counter* TxnCommitCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("txn.commits");
  return c;
}

obs::Counter* TxnAbortCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("txn.aborts");
  return c;
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Transaction::~Transaction() {
  // An abandoned bracket aborts (atomicity: D_t remains current).
  if (active_) {
    (void)Abort();
  }
}

Status Transaction::CheckActive() const {
  if (!active_) {
    return Status::TxnError("transaction " + std::to_string(id_) +
                            " is no longer active");
  }
  return Status::OK();
}

Result<const Relation*> Transaction::GetRelation(
    const std::string& name) const {
  MRA_RETURN_IF_ERROR(CheckActive());
  if (auto it = temps_.find(name); it != temps_.end()) return &it->second;
  if (auto it = working_.find(name); it != working_.end()) return &it->second;
  return db_->catalog_.GetRelation(name);
}

const stats::TableStatistics* Transaction::GetStatistics(
    const std::string& name) const {
  if (!active_ || temps_.count(name) > 0) return nullptr;
  return db_->catalog_.GetStatistics(name);
}

Result<Relation*> Transaction::GetWritable(const std::string& name) {
  if (temps_.count(name) > 0) {
    return Status::TxnError("cannot update temporary relation " + name +
                            " (temporaries are assignment-only)");
  }
  if (auto it = working_.find(name); it != working_.end()) return &it->second;
  MRA_ASSIGN_OR_RETURN(const Relation* base, db_->catalog_.GetRelation(name));
  auto [it, inserted] = working_.emplace(name, *base);
  (void)inserted;
  return &it->second;
}

Status Transaction::Insert(const std::string& name, const Relation& delta) {
  MRA_RETURN_IF_ERROR(CheckActive());
  MRA_ASSIGN_OR_RETURN(Relation* rel, GetWritable(name));
  // R ← R ⊎ E.
  MRA_ASSIGN_OR_RETURN(Relation merged, ops::Union(*rel, delta));
  merged.set_schema_name(name);
  *rel = std::move(merged);
  return Status::OK();
}

Status Transaction::Delete(const std::string& name, const Relation& delta) {
  MRA_RETURN_IF_ERROR(CheckActive());
  MRA_ASSIGN_OR_RETURN(Relation* rel, GetWritable(name));
  // R ← R − E.
  MRA_ASSIGN_OR_RETURN(Relation remaining, ops::Difference(*rel, delta));
  remaining.set_schema_name(name);
  *rel = std::move(remaining);
  return Status::OK();
}

Status Transaction::Update(const std::string& name, const Relation& matched,
                           const std::vector<ExprPtr>& alpha) {
  MRA_RETURN_IF_ERROR(CheckActive());
  MRA_ASSIGN_OR_RETURN(Relation* rel, GetWritable(name));
  // Definition 4.1 requires α to be structure-preserving: π_α of a
  // relation with R's schema has R's schema again.
  MRA_ASSIGN_OR_RETURN(RelationSchema projected,
                       InferProjectionSchema(alpha, rel->schema()));
  if (!projected.CompatibleWith(rel->schema())) {
    return Status::TypeError(
        "update expression list is not structure-preserving: yields " +
        projected.ToString() + " for relation " + rel->schema().ToString());
  }
  // R ← (R − E) ⊎ π_α(R ∩ E).
  MRA_ASSIGN_OR_RETURN(Relation untouched, ops::Difference(*rel, matched));
  MRA_ASSIGN_OR_RETURN(Relation hit, ops::Intersect(*rel, matched));
  MRA_ASSIGN_OR_RETURN(Relation rewritten, ops::Project(alpha, hit));
  // ops::Project synthesises attribute names; restore R's.
  Relation renamed(rel->schema());
  for (const auto& [tuple, count] : rewritten) {
    MRA_RETURN_IF_ERROR(renamed.Insert(tuple, count));
  }
  MRA_ASSIGN_OR_RETURN(Relation result, ops::Union(untouched, renamed));
  result.set_schema_name(name);
  *rel = std::move(result);
  return Status::OK();
}

Status Transaction::Assign(const std::string& name, Relation value) {
  MRA_RETURN_IF_ERROR(CheckActive());
  if (db_->catalog_.HasRelation(name)) {
    return Status::AlreadyExists(
        "assignment target " + name +
        " names a database relation (Definition 4.1: assignment introduces "
        "a new relational variable)");
  }
  value.set_schema_name(name);
  temps_[name] = std::move(value);  // Re-assignment of a temporary is allowed.
  return Status::OK();
}

Status Transaction::Commit() {
  static obs::Histogram* commit_us =
      obs::MetricsRegistry::Global().GetHistogram("txn.commit_us");

  MRA_RETURN_IF_ERROR(CheckActive());
  uint64_t t0 = NowMicros();
  // Correctness (§4.3): the post-state D_{t+1} must satisfy every
  // registered integrity constraint; otherwise the bracket aborts and D_t
  // stays current.  The overlay view *is* the candidate post-state.
  Status valid = db_->CheckConstraints(*this);
  if (!valid.ok()) {
    active_ = false;
    working_.clear();
    temps_.clear();
    db_->EndTransaction();
    TxnAbortCounter()->Inc();
    return valid;
  }
  Status s = db_->ApplyCommit(id_, working_);
  if (!s.ok()) {
    // Failed installation leaves D_t current; the bracket ends aborted.
    active_ = false;
    working_.clear();
    temps_.clear();
    db_->EndTransaction();
    TxnAbortCounter()->Inc();
    return s;
  }
  active_ = false;
  working_.clear();
  temps_.clear();
  TxnCommitCounter()->Inc();
  commit_us->Observe(NowMicros() - t0);
  return Status::OK();
}

Status Transaction::Abort() {
  MRA_RETURN_IF_ERROR(CheckActive());
  active_ = false;
  working_.clear();
  temps_.clear();
  db_->EndTransaction();
  TxnAbortCounter()->Inc();
  return Status::OK();
}

std::vector<std::string> Transaction::TemporaryNames() const {
  std::vector<std::string> names;
  names.reserve(temps_.size());
  for (const auto& [name, rel] : temps_) names.push_back(name);
  return names;
}

}  // namespace mra
