// The database engine: committed state + transaction management +
// durability.  Implements §4.3 of the paper: transactions are bracketed
// programs executed with atomicity (all-or-nothing installation of
// D_{t+1}), correctness (schema validation throughout), isolation (serial:
// one active transaction at a time) and durability (WAL + checkpoint).
//
// Thread model: a Database may be shared across threads (the network
// server hands every session its own Interpreter over one Database).
// Writers — Begin/commit, DDL, constraints, Checkpoint — serialize on an
// internal shared_mutex; read-only queries hold a shared lock for their
// whole evaluation (take one via ReadLock()), so they run concurrently
// with each other and never observe a half-installed commit.  A
// Transaction's own reads of the committed state need no lock: while a
// bracket is active every other mutator is refused before touching the
// catalog, so only the bracket's thread can write.

#ifndef MRA_TXN_DATABASE_H_
#define MRA_TXN_DATABASE_H_

#include <condition_variable>
#include <memory>
#include <shared_mutex>
#include <string>

#include "mra/algebra/plan.h"
#include "mra/catalog/catalog.h"
#include "mra/storage/wal.h"

namespace mra {

class Transaction;

struct DatabaseOptions {
  /// Directory for the WAL and checkpoint files.  Empty means a purely
  /// in-memory database (no durability).
  std::string directory;
  /// fsync the WAL on every commit.  Off by default: crash-consistency
  /// is preserved either way (torn tails are discarded), fsync only
  /// narrows the window of acknowledged-but-lost commits.
  bool sync_commits = false;
  /// Salvage a corrupt WAL on open: recover the intact prefix instead of
  /// failing with Corruption (storage::Salvage::kPrefix; the dropped
  /// suffix is reported through the wal.salvaged_* metrics).  The log is
  /// truncated back to the surviving prefix before new commits append.
  bool salvage_wal = false;
};

/// A multi-set relational database.
class Database {
 public:
  /// Opens (and, when `options.directory` is set, recovers) a database.
  /// Recovery loads the newest checkpoint and replays the WAL; a torn WAL
  /// tail is discarded, other corruption fails the open.
  static Result<std::unique_ptr<Database>> Open(DatabaseOptions options = {});

  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// DDL (a documented extension; see DESIGN.md): creates an empty
  /// relation.  Not allowed while a transaction is active; logged for
  /// durability.
  Status CreateRelation(RelationSchema schema);
  Status DropRelation(const std::string& name);

  /// ANALYZE <relation>: scans the committed instance, stores a statistics
  /// snapshot in the catalog and WAL-logs it (durability mirrors DDL).
  /// Returns the snapshot so the statement layer can render a summary.
  /// Not allowed while a transaction is active.
  Result<stats::TableStatistics> Analyze(const std::string& name);

  /// The committed state D_t (Definition 2.5/2.6).
  const Catalog& catalog() const { return catalog_; }

  /// Opens a transaction bracket (Definition 4.3).  Serial isolation: at
  /// most one transaction is active; a second Begin is a TxnError — unless
  /// `wait` is set, in which case Begin blocks until the slot frees (how
  /// concurrent server sessions queue their brackets).
  Result<std::unique_ptr<Transaction>> Begin(bool wait = false);

  /// Shared lock over the committed state.  Hold it while evaluating a
  /// read-only query against catalog() from a thread that may race with
  /// commits; Interpreter::Query does this automatically.
  std::shared_lock<std::shared_mutex> ReadLock() const {
    return std::shared_lock<std::shared_mutex>(mutex_);
  }

  /// Registers an integrity constraint: `violation_query` is a plan that
  /// must evaluate to the EMPTY multi-set in every committed state (the
  /// §4.3 correctness property; semantics after the paper's companion
  /// work [11]).  The current state must already satisfy it.  Constraints
  /// are checked against each transaction's post-state at commit;
  /// violations abort the bracket.  Constraints are in-memory: reopen
  /// re-registers them (see DESIGN.md).  Not allowed mid-transaction.
  Status AddConstraint(const std::string& name, PlanPtr violation_query);

  Status DropConstraint(const std::string& name);

  /// Names of registered constraints, sorted.
  std::vector<std::string> ConstraintNames() const;

  /// Serializes the full state and truncates the WAL.
  Status Checkpoint();

  uint64_t logical_time() const { return catalog_.logical_time(); }

  /// Paths used when durable (for tests).
  std::string wal_path() const;
  std::string checkpoint_path() const;

 private:
  friend class Transaction;

  Database() = default;

  bool durable() const { return !options_.directory.empty(); }

  // Called by Transaction::Commit with the after-images of modified
  // relations; installs them, advances time, logs the commit record and
  // releases the transaction slot.
  Status ApplyCommit(uint64_t txn_id,
                     const std::map<std::string, Relation>& after_images);

  // Releases the transaction slot without committing (abort / destruction).
  void EndTransaction();

  // Evaluates every constraint against `view` (a transaction's post-state);
  // returns ConstraintViolation naming the first violated constraint.
  Status CheckConstraints(const RelationProvider& view) const;

  Status AppendDdlRecord(uint8_t kind, const RelationSchema& schema,
                         const std::string& name);
  Status Recover();

  DatabaseOptions options_;
  Catalog catalog_;
  std::map<std::string, PlanPtr> constraints_;
  storage::WalWriter wal_;
  uint64_t next_txn_id_ = 1;
  bool txn_active_ = false;
  /// Writers exclusive, query evaluation shared (see the thread model
  /// note at the top of this header).
  mutable std::shared_mutex mutex_;
  /// Signalled when the transaction slot frees, for Begin(wait=true).
  std::condition_variable_any txn_slot_cv_;
};

}  // namespace mra

#endif  // MRA_TXN_DATABASE_H_
