// Fault-injection framework: a process-wide registry of named failpoints
// compiled into the hot durability and network paths (WAL append/sync,
// checkpoint write/rename, socket reads/writes, server sessions — the
// full site catalog lives in docs/RECOVERY.md).
//
// A failpoint is disarmed by default and costs one relaxed atomic load at
// its site (bench/e14_fault_overhead measures this against the WAL append
// path).  Arming one — through the API or the MRA_FAILPOINTS environment
// variable — makes the site misbehave on demand:
//
//   error      the site fails with an injected IoError;
//   torn(N)    a write site persists only the first N bytes, then fails
//              (simulates a crash mid-write / a short write);
//   delay(MS)  the site sleeps MS milliseconds, then proceeds;
//   abort      the process exits immediately (kAbortExitCode) with no
//              cleanup — the crash half of the recovery torture harness.
//
// Triggering is scriptable per site: `after=N` passes the first N hits
// through untouched, `limit=N` caps how many times the action fires.
// Spec syntax (also the MRA_FAILPOINTS format):
//
//   MRA_FAILPOINTS="wal.append=torn(7):after=3;net.recv=delay(50):limit=2"
//
// Hit and trigger counts are exported through the obs metrics registry as
// `fault.<site>.hits` / `fault.<site>.triggered` (counted while armed).

#ifndef MRA_FAULT_FAILPOINT_H_
#define MRA_FAULT_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "mra/common/result.h"

namespace mra {
namespace obs {
class Counter;
}  // namespace obs

namespace fault {

/// Exit code used by the `abort` action, so a supervising process (the
/// torture harness) can tell an injected crash from ordinary termination.
constexpr int kAbortExitCode = 61;

enum class ActionKind : uint8_t {
  kOff = 0,    // Disarmed / pass through.
  kError = 1,  // Fail the site with an injected IoError.
  kTorn = 2,   // Write sites: persist `keep_bytes`, then fail.
  kDelay = 3,  // Sleep, then proceed (applied inside Hit()).
  kAbort = 4,  // _Exit(kAbortExitCode) — no flushing, no destructors.
};

/// Stable name for diagnostics, e.g. "torn".
std::string_view ActionKindName(ActionKind kind);

/// One site's armed behavior.
struct FaultConfig {
  ActionKind kind = ActionKind::kOff;
  /// kTorn: how many bytes of the write survive before the failure.
  uint32_t keep_bytes = 0;
  /// kDelay: added latency per triggered hit.
  int delay_ms = 0;
  /// Hits that pass through untouched before the action starts firing.
  uint64_t start_after = 0;
  /// Triggers after which the site goes quiet again (0 = unlimited).
  uint64_t max_triggers = 0;
};

/// A named injection site.  Sites cache the pointer returned by
/// FaultRegistry::Get in a function-local static and call Hit() inline;
/// pointers are stable for the process lifetime.
class Failpoint {
 public:
  /// What the site must do now.  kDelay and kAbort are executed inside
  /// Hit(), so an outcome only ever reports kOff, kError or kTorn.
  struct Outcome {
    ActionKind kind = ActionKind::kOff;
    uint32_t keep_bytes = 0;
  };

  /// The per-event call.  Disarmed cost: one relaxed atomic load.
  Outcome Hit() {
    if (!armed_.load(std::memory_order_acquire)) return Outcome{};
    return Fire();
  }

  /// The injected failure for kError / kTorn outcomes, naming the site.
  Status InjectedError() const;

  const std::string& name() const { return name_; }
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

 private:
  friend class FaultRegistry;

  explicit Failpoint(std::string name);

  /// Slow path: counts the hit, applies after/limit gating, sleeps or
  /// aborts for kDelay/kAbort, and reports kError/kTorn to the caller.
  Outcome Fire();

  void Arm(const FaultConfig& config);
  void Disarm();

  const std::string name_;
  std::atomic<bool> armed_{false};

  std::mutex mutex_;  // Guards config_ and the gating counters.
  FaultConfig config_;
  uint64_t hits_ = 0;      // Hits observed while armed.
  uint64_t triggers_ = 0;  // Hits on which the action actually fired.
  obs::Counter* hit_counter_;      // fault.<site>.hits
  obs::Counter* trigger_counter_;  // fault.<site>.triggered
};

/// Evaluates `fp` at a site that can only fail wholesale (no byte-level
/// tearing): kTorn is treated like kError.
inline Status InjectIfArmed(Failpoint* fp) {
  Failpoint::Outcome outcome = fp->Hit();
  if (outcome.kind == ActionKind::kOff) return Status::OK();
  return fp->InjectedError();
}

/// The process-wide failpoint registry.  Thread-safe.  The first touch of
/// Global() applies MRA_FAILPOINTS from the environment (a malformed spec
/// is reported on stderr and otherwise ignored, so a typo cannot turn
/// into silently-absent fault coverage in a torture run that checks
/// armed_sites()).
class FaultRegistry {
 public:
  static FaultRegistry& Global();

  FaultRegistry() = default;
  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  /// Finds or creates the named site; pointers stay valid for the
  /// registry's lifetime.  A site configured before its code path first
  /// runs is armed from its first hit.
  Failpoint* Get(const std::string& site);

  /// Arms (or, for kOff, disarms) one site.
  Status Configure(const std::string& site, const FaultConfig& config);

  void Disarm(const std::string& site);

  /// Disarms every site (test teardown / `--failpoints off`).
  void DisarmAll();

  /// Applies a spec string: `site=action[:after=N][:limit=N]` entries
  /// separated by `;` or `,`.  Actions: off | error | abort | torn(N) |
  /// delay(MS).  Whitespace around tokens is ignored.  On a malformed
  /// entry nothing past it is applied and the parse error is returned.
  Status ConfigureFromSpec(std::string_view spec);

  /// Reads and applies MRA_FAILPOINTS; an unset/empty variable is OK.
  Status ConfigureFromEnv();

  /// Names of currently armed sites, sorted.
  std::vector<std::string> ArmedSites() const;

 private:
  mutable std::mutex mutex_;  // Guards the map, not the sites.
  std::map<std::string, std::unique_ptr<Failpoint>> sites_;
};

/// Parses one spec entry's action+modifier suffix (everything after the
/// `=`), e.g. "torn(7):after=3:limit=1".  Exposed for tests.
Result<FaultConfig> ParseFaultAction(std::string_view text);

}  // namespace fault
}  // namespace mra

#endif  // MRA_FAULT_FAILPOINT_H_
