#include "mra/fault/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "mra/obs/metrics.h"

namespace mra {
namespace fault {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses a non-negative decimal integer; the whole string must match.
Result<uint64_t> ParseUint(std::string_view text, std::string_view what) {
  if (text.empty()) {
    return Status::InvalidArgument("failpoint spec: empty " +
                                   std::string(what));
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("failpoint spec: bad " +
                                     std::string(what) + " \"" +
                                     std::string(text) + "\"");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

/// Splits "name(arg)" into name and arg; arg is empty when absent.
Status SplitCall(std::string_view text, std::string_view* name,
                 std::string_view* arg) {
  size_t open = text.find('(');
  if (open == std::string_view::npos) {
    *name = text;
    *arg = {};
    return Status::OK();
  }
  if (text.back() != ')') {
    return Status::InvalidArgument("failpoint spec: unbalanced \"" +
                                   std::string(text) + "\"");
  }
  *name = text.substr(0, open);
  *arg = text.substr(open + 1, text.size() - open - 2);
  return Status::OK();
}

}  // namespace

std::string_view ActionKindName(ActionKind kind) {
  switch (kind) {
    case ActionKind::kOff:
      return "off";
    case ActionKind::kError:
      return "error";
    case ActionKind::kTorn:
      return "torn";
    case ActionKind::kDelay:
      return "delay";
    case ActionKind::kAbort:
      return "abort";
  }
  return "?";
}

Failpoint::Failpoint(std::string name)
    : name_(std::move(name)),
      hit_counter_(obs::MetricsRegistry::Global().GetCounter(
          "fault." + name_ + ".hits")),
      trigger_counter_(obs::MetricsRegistry::Global().GetCounter(
          "fault." + name_ + ".triggered")) {}

Status Failpoint::InjectedError() const {
  return Status::IoError("injected fault at " + name_);
}

Failpoint::Outcome Failpoint::Fire() {
  ActionKind kind;
  uint32_t keep_bytes;
  int delay_ms;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (config_.kind == ActionKind::kOff) return Outcome{};
    ++hits_;
    hit_counter_->Inc();
    if (hits_ <= config_.start_after) return Outcome{};
    if (config_.max_triggers != 0 && triggers_ >= config_.max_triggers) {
      return Outcome{};
    }
    ++triggers_;
    trigger_counter_->Inc();
    kind = config_.kind;
    keep_bytes = config_.keep_bytes;
    delay_ms = config_.delay_ms;
  }
  switch (kind) {
    case ActionKind::kDelay:
      // Sleep outside the lock so a delayed site cannot stall Configure.
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return Outcome{};
    case ActionKind::kAbort:
      // A crash, not an exit: no stdio flushing, no destructors, no
      // atexit hooks — user-space buffers die exactly as they would on
      // a SIGKILL.
      std::_Exit(kAbortExitCode);
    case ActionKind::kError:
    case ActionKind::kTorn:
      return Outcome{kind, keep_bytes};
    case ActionKind::kOff:
      break;
  }
  return Outcome{};
}

void Failpoint::Arm(const FaultConfig& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
  hits_ = 0;
  triggers_ = 0;
  armed_.store(config.kind != ActionKind::kOff, std::memory_order_release);
}

void Failpoint::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = FaultConfig{};
  armed_.store(false, std::memory_order_release);
}

Result<FaultConfig> ParseFaultAction(std::string_view text) {
  FaultConfig config;
  // Action, then `:key=value` modifiers.
  size_t colon = text.find(':');
  std::string_view action = Trim(text.substr(0, colon));
  std::string_view name, arg;
  MRA_RETURN_IF_ERROR(SplitCall(action, &name, &arg));
  if (name == "off") {
    config.kind = ActionKind::kOff;
  } else if (name == "error") {
    config.kind = ActionKind::kError;
  } else if (name == "abort") {
    config.kind = ActionKind::kAbort;
  } else if (name == "torn") {
    config.kind = ActionKind::kTorn;
    MRA_ASSIGN_OR_RETURN(uint64_t keep, ParseUint(arg, "torn byte count"));
    config.keep_bytes = static_cast<uint32_t>(keep);
  } else if (name == "delay") {
    config.kind = ActionKind::kDelay;
    MRA_ASSIGN_OR_RETURN(uint64_t ms, ParseUint(arg, "delay milliseconds"));
    config.delay_ms = static_cast<int>(ms);
  } else {
    return Status::InvalidArgument("failpoint spec: unknown action \"" +
                                   std::string(action) + "\"");
  }
  if ((name == "error" || name == "abort" || name == "off") && !arg.empty()) {
    return Status::InvalidArgument("failpoint spec: action \"" +
                                   std::string(name) +
                                   "\" takes no argument");
  }
  while (colon != std::string_view::npos) {
    size_t start = colon + 1;
    colon = text.find(':', start);
    std::string_view mod = Trim(text.substr(
        start, colon == std::string_view::npos ? colon : colon - start));
    size_t eq = mod.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("failpoint spec: bad modifier \"" +
                                     std::string(mod) + "\"");
    }
    std::string_view key = Trim(mod.substr(0, eq));
    std::string_view value = Trim(mod.substr(eq + 1));
    if (key == "after") {
      MRA_ASSIGN_OR_RETURN(config.start_after, ParseUint(value, "after"));
    } else if (key == "limit") {
      MRA_ASSIGN_OR_RETURN(config.max_triggers, ParseUint(value, "limit"));
    } else {
      return Status::InvalidArgument("failpoint spec: unknown modifier \"" +
                                     std::string(key) + "\"");
    }
  }
  return config;
}

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = [] {
    auto* r = new FaultRegistry();
    Status s = r->ConfigureFromEnv();
    if (!s.ok()) {
      std::fprintf(stderr, "MRA_FAILPOINTS ignored: %s\n",
                   s.ToString().c_str());
    }
    return r;
  }();
  return *registry;
}

Failpoint* FaultRegistry::Get(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    it = sites_.emplace(site, std::unique_ptr<Failpoint>(new Failpoint(site)))
             .first;
  }
  return it->second.get();
}

Status FaultRegistry::Configure(const std::string& site,
                                const FaultConfig& config) {
  if (site.empty()) {
    return Status::InvalidArgument("failpoint site name is empty");
  }
  Get(site)->Arm(config);
  return Status::OK();
}

void FaultRegistry::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second->Disarm();
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, fp] : sites_) fp->Disarm();
}

Status FaultRegistry::ConfigureFromSpec(std::string_view spec) {
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t end = spec.find_first_of(";,", pos);
    std::string_view entry = Trim(
        spec.substr(pos, end == std::string_view::npos ? end : end - pos));
    pos = end == std::string_view::npos ? spec.size() + 1 : end + 1;
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("failpoint spec: entry \"" +
                                     std::string(entry) +
                                     "\" is not site=action");
    }
    std::string site(Trim(entry.substr(0, eq)));
    MRA_ASSIGN_OR_RETURN(FaultConfig config,
                         ParseFaultAction(entry.substr(eq + 1)));
    MRA_RETURN_IF_ERROR(Configure(site, config));
  }
  return Status::OK();
}

Status FaultRegistry::ConfigureFromEnv() {
  const char* spec = std::getenv("MRA_FAILPOINTS");
  if (spec == nullptr || spec[0] == '\0') return Status::OK();
  return ConfigureFromSpec(spec);
}

std::vector<std::string> FaultRegistry::ArmedSites() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [name, fp] : sites_) {
    if (fp->armed()) out.push_back(name);
  }
  return out;
}

}  // namespace fault
}  // namespace mra
