#include "mra/sql/sql_ast.h"

#include <cctype>
#include <sstream>

namespace mra {
namespace sql {

SqlExprPtr SqlColumn(ColumnRef ref) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = SqlExpr::Kind::kColumn;
  e->column = std::move(ref);
  return e;
}

SqlExprPtr SqlLiteral(Value v) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = SqlExpr::Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

SqlExprPtr SqlUnary(UnaryOp op, SqlExprPtr operand) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = SqlExpr::Kind::kUnary;
  e->unary_op = op;
  e->lhs = std::move(operand);
  return e;
}

SqlExprPtr SqlBinary(BinaryOp op, SqlExprPtr lhs, SqlExprPtr rhs) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = SqlExpr::Kind::kBinary;
  e->binary_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

SqlExprPtr SqlAggregate(AggKind agg, SqlExprPtr arg_or_null) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = SqlExpr::Kind::kAggregate;
  e->agg = agg;
  e->lhs = std::move(arg_or_null);
  return e;
}

std::string SqlExpr::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return column.ToString();
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kUnary:
      return unary_op == UnaryOp::kNeg ? "(-" + lhs->ToString() + ")"
                                       : "(NOT " + lhs->ToString() + ")";
    case Kind::kBinary: {
      std::ostringstream out;
      out << "(" << lhs->ToString() << " " << BinaryOpName(binary_op) << " "
          << rhs->ToString() << ")";
      return out.str();
    }
    case Kind::kAggregate: {
      std::string name(AggKindName(agg));
      for (char& c : name) c = static_cast<char>(std::toupper(c));
      return name + "(" + (lhs ? lhs->ToString() : "*") + ")";
    }
  }
  return "?";
}

std::string SelectItem::ToString() const {
  std::string out;
  switch (kind) {
    case Kind::kStar:
      out = "*";
      break;
    case Kind::kExpr:
      out = expr->ToString();
      break;
    case Kind::kAggregate: {
      std::string name(AggKindName(agg));
      for (char& c : name) c = static_cast<char>(std::toupper(c));
      out = name + "(" + (expr ? expr->ToString() : "*") + ")";
      break;
    }
  }
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

}  // namespace sql
}  // namespace mra
