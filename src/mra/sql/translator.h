// SQL → extended relational algebra translation, in the spirit the paper
// describes (§1, §5: "a formal background for other multi-set languages
// like SQL", citing Ceri & Gottlob's SQL-to-algebra translation).
//
// The translator maps each SQL statement to an XRA statement (lang::Stmt):
//
//   SELECT … FROM t1, t2 WHERE p            → ? project(…, select(p',
//                                                product(t1, t2)))
//   SELECT DISTINCT …                       → ? unique(project(…))
//   SELECT c, AVG(x) … GROUP BY c           → ? groupby([c'], avg(x'), …)
//                                             — Example 3.2's translation
//   INSERT INTO t VALUES …                  → insert(t, {…})
//   UPDATE t SET c = e WHERE p              → update(t, select(p', t), α)
//                                             — exactly Example 4.1
//   DELETE FROM t WHERE p                   → delete(t, select(p', t))
//   CREATE TABLE / DROP TABLE               → create / drop
//
// Named column references resolve to positional %i over the ⊕-concatenated
// FROM schema.  SqlSession then executes the translated statements through
// the XRA interpreter, with SQL's autocommit/BEGIN/COMMIT/ROLLBACK mapped
// onto the paper's transaction brackets.

#ifndef MRA_SQL_TRANSLATOR_H_
#define MRA_SQL_TRANSLATOR_H_

#include <memory>

#include "mra/lang/ast.h"
#include "mra/lang/interpreter.h"
#include "mra/sql/sql_ast.h"

namespace mra {
namespace sql {

/// Resolves [table.]column names to 0-based positions over the concatenated
/// schema of a FROM list.
class NameScope {
 public:
  /// Builds a scope for `tables`, resolving each through `provider`.
  static Result<NameScope> ForTables(const std::vector<std::string>& tables,
                                     const RelationProvider& provider);

  /// Global attribute index of `ref`; ambiguous or unknown names error.
  Result<size_t> Resolve(const ColumnRef& ref) const;

  /// The ⊕-concatenation of the table schemas, in FROM order.
  const RelationSchema& combined() const { return combined_; }

 private:
  struct TableEntry {
    std::string name;
    size_t offset;
    size_t arity;
  };
  std::vector<TableEntry> tables_;
  RelationSchema combined_;
};

/// Translates a SQL scalar expression to a positional algebra expression.
Result<ExprPtr> TranslateExpr(const SqlExpr& expr, const NameScope& scope);

/// Translates a SELECT into an XRA relation expression.
Result<lang::RelExprPtr> TranslateSelect(const SelectStmt& stmt,
                                         const RelationProvider& provider);

/// Translates one non-transaction-control SQL statement into an XRA
/// statement.  The provider supplies schemas for name resolution.
Result<lang::Stmt> TranslateStatement(const SqlStatement& stmt,
                                      const RelationProvider& provider);

/// Widening coercion of an INSERT literal to a column domain: exact match,
/// int → real, int → decimal.  Anything else is a TypeError.
Result<Value> CoerceValue(const Value& v, Type target);

/// Executes SQL against a Database through the XRA pipeline.  Supports
/// autocommit (each statement its own bracket) and explicit
/// BEGIN/COMMIT/ROLLBACK; a statement failure inside an explicit
/// transaction aborts the whole bracket (Definition 4.3 atomicity).
class SqlSession {
 public:
  explicit SqlSession(Database* db, lang::InterpreterOptions options = {})
      : db_(db), interp_(db, options) {}

  ~SqlSession();

  /// Parses and executes `sql_text`; SELECT results go to `on_query`.
  Status Execute(std::string_view sql_text,
                 const lang::Interpreter::QueryCallback& on_query = nullptr);

  /// Convenience: collect SELECT results.
  Result<std::vector<Relation>> ExecuteCollect(std::string_view sql_text);

  bool in_transaction() const { return txn_ != nullptr; }

 private:
  Status ExecuteOne(const SqlStatement& stmt,
                    const lang::Interpreter::QueryCallback& on_query);

  Database* db_;
  lang::Interpreter interp_;
  std::unique_ptr<Transaction> txn_;
};

}  // namespace sql
}  // namespace mra

#endif  // MRA_SQL_TRANSLATOR_H_
