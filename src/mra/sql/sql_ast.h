// Abstract syntax for the SQL subset the paper positions the algebra as a
// formal background for (§1, §5; Examples 3.2 and 4.1 give the SQL forms):
// SELECT [DISTINCT] … FROM … WHERE … GROUP BY …, INSERT INTO … VALUES,
// UPDATE … SET … WHERE, DELETE FROM … WHERE, CREATE TABLE, DROP TABLE and
// BEGIN/COMMIT/ROLLBACK.
//
// SQL scalar expressions carry *named* column references; the translator
// (translator.h) resolves them to positional %i references over the FROM
// product schema, exactly in the spirit of the paper's translation.

#ifndef MRA_SQL_SQL_AST_H_
#define MRA_SQL_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "mra/algebra/aggregate.h"
#include "mra/core/schema.h"
#include "mra/core/value.h"
#include "mra/expr/scalar_expr.h"

namespace mra {
namespace sql {

struct SqlExpr;
using SqlExprPtr = std::shared_ptr<const SqlExpr>;

/// A (possibly qualified) column reference: [table.]column.
struct ColumnRef {
  std::string table;  // empty when unqualified
  std::string column;

  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
};

/// SQL scalar expression.  Aggregate calls (kAggregate) are only legal in
/// select lists and HAVING clauses; the translator rejects them elsewhere.
struct SqlExpr {
  enum class Kind : uint8_t { kColumn, kLiteral, kUnary, kBinary, kAggregate };

  Kind kind;
  ColumnRef column;          // kColumn
  Value literal;             // kLiteral
  UnaryOp unary_op{};        // kUnary
  BinaryOp binary_op{};      // kBinary
  SqlExprPtr lhs, rhs;       // kUnary/kAggregate use lhs only
  AggKind agg{};             // kAggregate; lhs null means COUNT(*)

  std::string ToString() const;
};

SqlExprPtr SqlColumn(ColumnRef ref);
SqlExprPtr SqlLiteral(Value v);
SqlExprPtr SqlUnary(UnaryOp op, SqlExprPtr operand);
SqlExprPtr SqlBinary(BinaryOp op, SqlExprPtr lhs, SqlExprPtr rhs);
SqlExprPtr SqlAggregate(AggKind agg, SqlExprPtr arg_or_null);

/// One item of a select list.
struct SelectItem {
  enum class Kind : uint8_t { kStar, kExpr, kAggregate };

  Kind kind;
  SqlExprPtr expr;            // kExpr; kAggregate argument (null for COUNT(*))
  AggKind agg{};              // kAggregate
  std::string alias;          // AS name (optional)

  std::string ToString() const;
};

/// One ORDER BY item: a column of the *output* (a select-list alias, a
/// projected column, or a group key / aggregate alias), with direction.
struct OrderItem {
  ColumnRef column;
  bool desc = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<std::string> tables;  // FROM t1, t2, …
  SqlExprPtr where;                 // nullable
  std::vector<ColumnRef> group_by;
  SqlExprPtr having;                // nullable; may contain aggregates
  std::vector<OrderItem> order_by;  // empty = no ordering requested
  uint64_t limit = 0;               // multiplicity-weighted LIMIT; 0 = none
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<Value>> rows;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, SqlExprPtr>> assignments;
  SqlExprPtr where;  // nullable
};

struct DeleteStmt {
  std::string table;
  SqlExprPtr where;  // nullable
};

struct CreateTableStmt {
  RelationSchema schema;
};

struct DropTableStmt {
  std::string table;
};

/// ANALYZE table — collects and stores a statistics snapshot.
struct AnalyzeStmt {
  std::string table;
};

/// SET knob = value — a per-session ExecConfig override (the same knob
/// registry as the XRA `set` statement and the REPL's `\set`).
struct SetStmt {
  std::string knob;
  std::string value;
};

enum class TxnControl : uint8_t { kBegin, kCommit, kRollback };

/// EXPLAIN [ANALYZE] SELECT … — renders the translated plans; with ANALYZE
/// the query also executes and the physical tree carries actual vs.
/// estimated cardinalities and wall time.
struct ExplainStmt {
  bool analyze = false;
  std::shared_ptr<SelectStmt> select;
};

using SqlStatement =
    std::variant<SelectStmt, InsertStmt, UpdateStmt, DeleteStmt,
                 CreateTableStmt, DropTableStmt, AnalyzeStmt, SetStmt,
                 TxnControl, ExplainStmt>;

}  // namespace sql
}  // namespace mra

#endif  // MRA_SQL_SQL_AST_H_
