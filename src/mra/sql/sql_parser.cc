#include "mra/sql/sql_parser.h"

#include "mra/sql/sql_lexer.h"

namespace mra {
namespace sql {

namespace {

class SqlParser {
 public:
  explicit SqlParser(std::vector<SqlToken> tokens)
      : tokens_(std::move(tokens)) {}

  Result<std::vector<SqlStatement>> Run() {
    std::vector<SqlStatement> out;
    while (!Check(SqlTokenKind::kEnd)) {
      if (Check(SqlTokenKind::kSemicolon)) {
        Advance();
        continue;
      }
      MRA_ASSIGN_OR_RETURN(SqlStatement stmt, ParseStatement());
      out.push_back(std::move(stmt));
      if (Check(SqlTokenKind::kSemicolon)) {
        Advance();
      } else if (!Check(SqlTokenKind::kEnd)) {
        return Error("expected ';' between statements");
      }
    }
    return out;
  }

 private:
  const SqlToken& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const SqlToken& Advance() { return tokens_[pos_++]; }
  bool Check(SqlTokenKind kind) const { return Peek().kind == kind; }
  bool CheckKw(std::string_view kw, size_t ahead = 0) const {
    return Peek(ahead).kind == SqlTokenKind::kIdentifier &&
           Peek(ahead).upper == kw;
  }
  bool AcceptKw(std::string_view kw) {
    if (!CheckKw(kw)) return false;
    Advance();
    return true;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " (found " + Peek().Describe() +
                              " at line " + std::to_string(Peek().line) + ")");
  }

  Status ExpectKw(std::string_view kw) {
    if (!AcceptKw(kw)) return Error("expected " + std::string(kw));
    return Status::OK();
  }

  Status Expect(SqlTokenKind kind, const char* what) {
    if (!Check(kind)) return Error(std::string("expected ") + what);
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectName(const char* what) {
    if (!Check(SqlTokenKind::kIdentifier)) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  Result<SqlStatement> ParseStatement() {
    if (AcceptKw("EXPLAIN")) {
      ExplainStmt stmt;
      stmt.analyze = AcceptKw("ANALYZE");
      if (!CheckKw("SELECT")) {
        return Error("expected SELECT after EXPLAIN");
      }
      MRA_ASSIGN_OR_RETURN(SqlStatement select, ParseSelect());
      stmt.select =
          std::make_shared<SelectStmt>(std::get<SelectStmt>(std::move(select)));
      return SqlStatement(std::move(stmt));
    }
    if (CheckKw("SELECT")) return ParseSelect();
    if (CheckKw("INSERT")) return ParseInsert();
    if (CheckKw("UPDATE")) return ParseUpdate();
    if (CheckKw("DELETE")) return ParseDelete();
    if (CheckKw("CREATE")) return ParseCreate();
    if (CheckKw("DROP")) return ParseDrop();
    if (AcceptKw("ANALYZE")) {
      AnalyzeStmt stmt;
      MRA_ASSIGN_OR_RETURN(stmt.table, ExpectName("table name"));
      return SqlStatement(std::move(stmt));
    }
    // Statement-initial SET is unambiguous: UPDATE's SET clause only
    // appears after UPDATE <table>.
    if (AcceptKw("SET")) {
      SetStmt stmt;
      MRA_ASSIGN_OR_RETURN(stmt.knob, ExpectName("knob name"));
      MRA_RETURN_IF_ERROR(Expect(SqlTokenKind::kEq, "="));
      // The value travels verbatim; ExecConfig::Set parses it against the
      // knob's type (number or boolean).
      if (Check(SqlTokenKind::kIntLit) || Check(SqlTokenKind::kIdentifier)) {
        stmt.value = Advance().text;
        return SqlStatement(std::move(stmt));
      }
      return Error("expected a knob value");
    }
    if (AcceptKw("BEGIN")) {
      (void)(AcceptKw("WORK") || AcceptKw("TRANSACTION"));
      return SqlStatement(TxnControl::kBegin);
    }
    if (AcceptKw("COMMIT")) {
      (void)(AcceptKw("WORK") || AcceptKw("TRANSACTION"));
      return SqlStatement(TxnControl::kCommit);
    }
    if (AcceptKw("ROLLBACK")) {
      (void)(AcceptKw("WORK") || AcceptKw("TRANSACTION"));
      return SqlStatement(TxnControl::kRollback);
    }
    return Error("expected a SQL statement");
  }

  static Result<AggKind> AggFromKeyword(const std::string& upper) {
    if (upper == "COUNT") return AggKind::kCnt;
    if (upper == "SUM") return AggKind::kSum;
    if (upper == "AVG") return AggKind::kAvg;
    if (upper == "MIN") return AggKind::kMin;
    if (upper == "MAX") return AggKind::kMax;
    return Status::NotFound("not an aggregate");
  }

  bool AtAggregateCall() const {
    if (Peek().kind != SqlTokenKind::kIdentifier) return false;
    if (!AggFromKeyword(Peek().upper).ok()) return false;
    return Peek(1).kind == SqlTokenKind::kLParen;
  }

  Result<SqlStatement> ParseSelect() {
    MRA_RETURN_IF_ERROR(ExpectKw("SELECT"));
    SelectStmt stmt;
    stmt.distinct = AcceptKw("DISTINCT");
    if (AcceptKw("ALL")) stmt.distinct = false;

    while (true) {
      SelectItem item;
      if (Check(SqlTokenKind::kStar)) {
        Advance();
        item.kind = SelectItem::Kind::kStar;
      } else if (AtAggregateCall()) {
        MRA_ASSIGN_OR_RETURN(item.agg, AggFromKeyword(Advance().upper));
        item.kind = SelectItem::Kind::kAggregate;
        MRA_RETURN_IF_ERROR(Expect(SqlTokenKind::kLParen, "'('"));
        if (Check(SqlTokenKind::kStar)) {
          Advance();  // COUNT(*)
          if (item.agg != AggKind::kCnt) {
            return Error("only COUNT accepts *");
          }
        } else {
          MRA_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        }
        MRA_RETURN_IF_ERROR(Expect(SqlTokenKind::kRParen, "')'"));
      } else {
        item.kind = SelectItem::Kind::kExpr;
        MRA_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
      if (AcceptKw("AS")) {
        MRA_ASSIGN_OR_RETURN(item.alias, ExpectName("alias"));
      }
      stmt.items.push_back(std::move(item));
      if (Check(SqlTokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }

    MRA_RETURN_IF_ERROR(ExpectKw("FROM"));
    while (true) {
      MRA_ASSIGN_OR_RETURN(std::string table, ExpectName("table name"));
      stmt.tables.push_back(std::move(table));
      if (Check(SqlTokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }

    if (AcceptKw("WHERE")) {
      MRA_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (AcceptKw("GROUP")) {
      MRA_RETURN_IF_ERROR(ExpectKw("BY"));
      while (true) {
        MRA_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
        stmt.group_by.push_back(std::move(ref));
        if (Check(SqlTokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (AcceptKw("HAVING")) {
      MRA_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (AcceptKw("ORDER")) {
      MRA_RETURN_IF_ERROR(ExpectKw("BY"));
      while (true) {
        OrderItem item;
        MRA_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
        if (AcceptKw("DESC")) {
          item.desc = true;
        } else {
          (void)AcceptKw("ASC");
        }
        stmt.order_by.push_back(std::move(item));
        if (Check(SqlTokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (AcceptKw("LIMIT")) {
      if (!Check(SqlTokenKind::kIntLit)) {
        return Error("expected a row count after LIMIT");
      }
      stmt.limit = std::stoull(Advance().text);
      if (stmt.limit == 0) {
        return Error("LIMIT must be >= 1 (omit it for no limit)");
      }
    }
    return SqlStatement(std::move(stmt));
  }

  Result<SqlStatement> ParseInsert() {
    MRA_RETURN_IF_ERROR(ExpectKw("INSERT"));
    MRA_RETURN_IF_ERROR(ExpectKw("INTO"));
    InsertStmt stmt;
    MRA_ASSIGN_OR_RETURN(stmt.table, ExpectName("table name"));
    MRA_RETURN_IF_ERROR(ExpectKw("VALUES"));
    while (true) {
      MRA_RETURN_IF_ERROR(Expect(SqlTokenKind::kLParen, "'('"));
      std::vector<Value> row;
      while (true) {
        MRA_ASSIGN_OR_RETURN(Value v, ParseValueLiteral());
        row.push_back(std::move(v));
        if (Check(SqlTokenKind::kComma)) {
          Advance();
          continue;
        }
        break;
      }
      MRA_RETURN_IF_ERROR(Expect(SqlTokenKind::kRParen, "')'"));
      stmt.rows.push_back(std::move(row));
      if (Check(SqlTokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    return SqlStatement(std::move(stmt));
  }

  Result<SqlStatement> ParseUpdate() {
    MRA_RETURN_IF_ERROR(ExpectKw("UPDATE"));
    UpdateStmt stmt;
    MRA_ASSIGN_OR_RETURN(stmt.table, ExpectName("table name"));
    MRA_RETURN_IF_ERROR(ExpectKw("SET"));
    while (true) {
      MRA_ASSIGN_OR_RETURN(std::string column, ExpectName("column name"));
      MRA_RETURN_IF_ERROR(Expect(SqlTokenKind::kEq, "'='"));
      MRA_ASSIGN_OR_RETURN(SqlExprPtr value, ParseExpr());
      stmt.assignments.emplace_back(std::move(column), std::move(value));
      if (Check(SqlTokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    if (AcceptKw("WHERE")) {
      MRA_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return SqlStatement(std::move(stmt));
  }

  Result<SqlStatement> ParseDelete() {
    MRA_RETURN_IF_ERROR(ExpectKw("DELETE"));
    MRA_RETURN_IF_ERROR(ExpectKw("FROM"));
    DeleteStmt stmt;
    MRA_ASSIGN_OR_RETURN(stmt.table, ExpectName("table name"));
    if (AcceptKw("WHERE")) {
      MRA_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return SqlStatement(std::move(stmt));
  }

  Result<Type> ParseSqlType() {
    MRA_ASSIGN_OR_RETURN(std::string name, ExpectName("type name"));
    std::string upper = name;
    for (char& c : upper) c = static_cast<char>(std::toupper(c));
    Type type = Type::Int();
    if (upper == "INT" || upper == "INTEGER" || upper == "BIGINT") {
      type = Type::Int();
    } else if (upper == "REAL" || upper == "FLOAT" || upper == "DOUBLE") {
      type = Type::Real();
    } else if (upper == "BOOL" || upper == "BOOLEAN") {
      type = Type::Bool();
    } else if (upper == "STRING" || upper == "TEXT" || upper == "VARCHAR" ||
               upper == "CHAR") {
      type = Type::String();
    } else if (upper == "DATE") {
      type = Type::Date();
    } else if (upper == "DECIMAL" || upper == "NUMERIC" || upper == "MONEY") {
      type = Type::Decimal();
    } else {
      return Error("unknown SQL type " + name);
    }
    // Optional length/precision arguments, accepted and ignored.
    if (Check(SqlTokenKind::kLParen)) {
      Advance();
      while (!Check(SqlTokenKind::kRParen) && !Check(SqlTokenKind::kEnd)) {
        Advance();
      }
      MRA_RETURN_IF_ERROR(Expect(SqlTokenKind::kRParen, "')'"));
    }
    return type;
  }

  Result<SqlStatement> ParseCreate() {
    MRA_RETURN_IF_ERROR(ExpectKw("CREATE"));
    MRA_RETURN_IF_ERROR(ExpectKw("TABLE"));
    MRA_ASSIGN_OR_RETURN(std::string name, ExpectName("table name"));
    MRA_RETURN_IF_ERROR(Expect(SqlTokenKind::kLParen, "'('"));
    std::vector<Attribute> attrs;
    while (true) {
      MRA_ASSIGN_OR_RETURN(std::string column, ExpectName("column name"));
      MRA_ASSIGN_OR_RETURN(Type type, ParseSqlType());
      attrs.push_back({std::move(column), type});
      if (Check(SqlTokenKind::kComma)) {
        Advance();
        continue;
      }
      break;
    }
    MRA_RETURN_IF_ERROR(Expect(SqlTokenKind::kRParen, "')'"));
    CreateTableStmt stmt;
    stmt.schema = RelationSchema(std::move(name), std::move(attrs));
    return SqlStatement(std::move(stmt));
  }

  Result<SqlStatement> ParseDrop() {
    MRA_RETURN_IF_ERROR(ExpectKw("DROP"));
    MRA_RETURN_IF_ERROR(ExpectKw("TABLE"));
    DropTableStmt stmt;
    MRA_ASSIGN_OR_RETURN(stmt.table, ExpectName("table name"));
    return SqlStatement(std::move(stmt));
  }

  // --- Scalar expressions. ---

  Result<ColumnRef> ParseColumnRef() {
    MRA_ASSIGN_OR_RETURN(std::string first, ExpectName("column name"));
    ColumnRef ref;
    if (Check(SqlTokenKind::kDot)) {
      Advance();
      ref.table = std::move(first);
      MRA_ASSIGN_OR_RETURN(ref.column, ExpectName("column name"));
    } else {
      ref.column = std::move(first);
    }
    return ref;
  }

  Result<Value> ParseValueLiteral() {
    bool negate = false;
    if (Check(SqlTokenKind::kMinus)) {
      Advance();
      negate = true;
    }
    if (Check(SqlTokenKind::kIntLit)) {
      int64_t v = std::stoll(Advance().text);
      return Value::Int(negate ? -v : v);
    }
    if (Check(SqlTokenKind::kRealLit)) {
      double v = std::stod(Advance().text);
      return Value::Real(negate ? -v : v);
    }
    if (negate) return Error("cannot negate a non-numeric literal");
    if (Check(SqlTokenKind::kStringLit)) return Value::Str(Advance().text);
    if (AcceptKw("TRUE")) return Value::Bool(true);
    if (AcceptKw("FALSE")) return Value::Bool(false);
    if (CheckKw("DATE") && Peek(1).kind == SqlTokenKind::kStringLit) {
      Advance();
      return Value::DateFromString(Advance().text);
    }
    if (CheckKw("DECIMAL") && Peek(1).kind == SqlTokenKind::kStringLit) {
      Advance();
      return Value::DecimalFromString(Advance().text);
    }
    return Error("expected a literal value");
  }

  bool AtLiteral() const {
    switch (Peek().kind) {
      case SqlTokenKind::kIntLit:
      case SqlTokenKind::kRealLit:
      case SqlTokenKind::kStringLit:
        return true;
      default:
        return CheckKw("TRUE") || CheckKw("FALSE") ||
               ((CheckKw("DATE") || CheckKw("DECIMAL")) &&
                Peek(1).kind == SqlTokenKind::kStringLit);
    }
  }

  Result<SqlExprPtr> ParseExpr() { return ParseOr(); }

  Result<SqlExprPtr> ParseOr() {
    MRA_ASSIGN_OR_RETURN(SqlExprPtr e, ParseAnd());
    while (AcceptKw("OR")) {
      MRA_ASSIGN_OR_RETURN(SqlExprPtr r, ParseAnd());
      e = SqlBinary(BinaryOp::kOr, std::move(e), std::move(r));
    }
    return e;
  }

  Result<SqlExprPtr> ParseAnd() {
    MRA_ASSIGN_OR_RETURN(SqlExprPtr e, ParseNot());
    while (AcceptKw("AND")) {
      MRA_ASSIGN_OR_RETURN(SqlExprPtr r, ParseNot());
      e = SqlBinary(BinaryOp::kAnd, std::move(e), std::move(r));
    }
    return e;
  }

  Result<SqlExprPtr> ParseNot() {
    if (AcceptKw("NOT")) {
      MRA_ASSIGN_OR_RETURN(SqlExprPtr e, ParseNot());
      return SqlUnary(UnaryOp::kNot, std::move(e));
    }
    return ParseComparison();
  }

  Result<SqlExprPtr> ParseComparison() {
    MRA_ASSIGN_OR_RETURN(SqlExprPtr e, ParseAdditive());
    BinaryOp op;
    switch (Peek().kind) {
      case SqlTokenKind::kEq:
        op = BinaryOp::kEq;
        break;
      case SqlTokenKind::kNe:
        op = BinaryOp::kNe;
        break;
      case SqlTokenKind::kLt:
        op = BinaryOp::kLt;
        break;
      case SqlTokenKind::kLe:
        op = BinaryOp::kLe;
        break;
      case SqlTokenKind::kGt:
        op = BinaryOp::kGt;
        break;
      case SqlTokenKind::kGe:
        op = BinaryOp::kGe;
        break;
      default:
        return e;
    }
    Advance();
    MRA_ASSIGN_OR_RETURN(SqlExprPtr r, ParseAdditive());
    return SqlBinary(op, std::move(e), std::move(r));
  }

  Result<SqlExprPtr> ParseAdditive() {
    MRA_ASSIGN_OR_RETURN(SqlExprPtr e, ParseMultiplicative());
    while (Check(SqlTokenKind::kPlus) || Check(SqlTokenKind::kMinus)) {
      BinaryOp op = Advance().kind == SqlTokenKind::kPlus ? BinaryOp::kAdd
                                                          : BinaryOp::kSub;
      MRA_ASSIGN_OR_RETURN(SqlExprPtr r, ParseMultiplicative());
      e = SqlBinary(op, std::move(e), std::move(r));
    }
    return e;
  }

  Result<SqlExprPtr> ParseMultiplicative() {
    MRA_ASSIGN_OR_RETURN(SqlExprPtr e, ParseUnary());
    while (Check(SqlTokenKind::kStar) || Check(SqlTokenKind::kSlash) ||
           Check(SqlTokenKind::kPercent)) {
      SqlTokenKind t = Advance().kind;
      BinaryOp op = t == SqlTokenKind::kStar    ? BinaryOp::kMul
                    : t == SqlTokenKind::kSlash ? BinaryOp::kDiv
                                                : BinaryOp::kMod;
      MRA_ASSIGN_OR_RETURN(SqlExprPtr r, ParseUnary());
      e = SqlBinary(op, std::move(e), std::move(r));
    }
    return e;
  }

  Result<SqlExprPtr> ParseUnary() {
    if (Check(SqlTokenKind::kMinus)) {
      Advance();
      MRA_ASSIGN_OR_RETURN(SqlExprPtr e, ParseUnary());
      return SqlUnary(UnaryOp::kNeg, std::move(e));
    }
    return ParsePrimary();
  }

  Result<SqlExprPtr> ParsePrimary() {
    if (Check(SqlTokenKind::kLParen)) {
      Advance();
      MRA_ASSIGN_OR_RETURN(SqlExprPtr e, ParseExpr());
      MRA_RETURN_IF_ERROR(Expect(SqlTokenKind::kRParen, "')'"));
      return e;
    }
    if (AtLiteral()) {
      MRA_ASSIGN_OR_RETURN(Value v, ParseValueLiteral());
      return SqlLiteral(std::move(v));
    }
    if (AtAggregateCall()) {
      // Aggregate call in an expression context (valid in HAVING; the
      // translator rejects it in WHERE).
      MRA_ASSIGN_OR_RETURN(AggKind agg, AggFromKeyword(Advance().upper));
      MRA_RETURN_IF_ERROR(Expect(SqlTokenKind::kLParen, "'('"));
      SqlExprPtr arg;
      if (Check(SqlTokenKind::kStar)) {
        Advance();
        if (agg != AggKind::kCnt) return Error("only COUNT accepts *");
      } else {
        MRA_ASSIGN_OR_RETURN(arg, ParseExpr());
      }
      MRA_RETURN_IF_ERROR(Expect(SqlTokenKind::kRParen, "')'"));
      return SqlAggregate(agg, std::move(arg));
    }
    if (Check(SqlTokenKind::kIdentifier)) {
      MRA_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
      return SqlColumn(std::move(ref));
    }
    return Error("expected an expression");
  }

  std::vector<SqlToken> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<SqlStatement>> ParseSql(std::string_view source) {
  MRA_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens, SqlTokenize(source));
  return SqlParser(std::move(tokens)).Run();
}

}  // namespace sql
}  // namespace mra
