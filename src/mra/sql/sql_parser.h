// Recursive-descent parser for the SQL subset (see sql_ast.h).

#ifndef MRA_SQL_SQL_PARSER_H_
#define MRA_SQL_SQL_PARSER_H_

#include <string_view>
#include <vector>

#include "mra/common/result.h"
#include "mra/sql/sql_ast.h"

namespace mra {
namespace sql {

/// Parses a `;`-separated sequence of SQL statements.
Result<std::vector<SqlStatement>> ParseSql(std::string_view source);

}  // namespace sql
}  // namespace mra

#endif  // MRA_SQL_SQL_PARSER_H_
