// Lexer for the SQL subset.  Keywords are case-insensitive; identifiers
// keep their case.  Strings use single quotes with '' escaping; `--`
// comments run to the end of the line.

#ifndef MRA_SQL_SQL_LEXER_H_
#define MRA_SQL_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mra/common/result.h"

namespace mra {
namespace sql {

enum class SqlTokenKind : uint8_t {
  kEnd,
  kIdentifier,  // raw identifiers AND keywords (text is upper-cased for
                // keywords lookup by the parser via `upper`)
  kIntLit,
  kRealLit,
  kStringLit,
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kDot,
  kStar,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
};

struct SqlToken {
  SqlTokenKind kind = SqlTokenKind::kEnd;
  std::string text;   // original spelling
  std::string upper;  // upper-cased spelling (keyword matching)
  int line = 0;

  std::string Describe() const;
};

Result<std::vector<SqlToken>> SqlTokenize(std::string_view source);

}  // namespace sql
}  // namespace mra

#endif  // MRA_SQL_SQL_LEXER_H_
