#include "mra/sql/sql_lexer.h"

#include <cctype>

namespace mra {
namespace sql {

std::string SqlToken::Describe() const {
  switch (kind) {
    case SqlTokenKind::kEnd:
      return "end of input";
    case SqlTokenKind::kIdentifier:
      return "'" + text + "'";
    case SqlTokenKind::kIntLit:
    case SqlTokenKind::kRealLit:
      return "number '" + text + "'";
    case SqlTokenKind::kStringLit:
      return "string '" + text + "'";
    default:
      return "'" + text + "'";
  }
}

Result<std::vector<SqlToken>> SqlTokenize(std::string_view source) {
  std::vector<SqlToken> tokens;
  size_t pos = 0;
  int line = 1;

  auto peek = [&](size_t ahead = 0) -> char {
    return pos + ahead < source.size() ? source[pos + ahead] : '\0';
  };
  auto advance = [&]() -> char {
    char c = source[pos++];
    if (c == '\n') ++line;
    return c;
  };
  auto make = [&](SqlTokenKind kind, std::string text) {
    SqlToken t;
    t.kind = kind;
    t.upper = text;
    for (char& c : t.upper) c = static_cast<char>(std::toupper(c));
    t.text = std::move(text);
    t.line = line;
    tokens.push_back(std::move(t));
  };

  while (pos < source.size()) {
    char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '-' && peek(1) == '-') {
      while (pos < source.size() && peek() != '\n') advance();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (pos < source.size() &&
             (std::isalnum(static_cast<unsigned char>(peek())) ||
              peek() == '_')) {
        word.push_back(advance());
      }
      make(SqlTokenKind::kIdentifier, std::move(word));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits;
      bool real = false;
      while (pos < source.size() &&
             std::isdigit(static_cast<unsigned char>(peek()))) {
        digits.push_back(advance());
      }
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        real = true;
        digits.push_back(advance());
        while (pos < source.size() &&
               std::isdigit(static_cast<unsigned char>(peek()))) {
          digits.push_back(advance());
        }
      }
      make(real ? SqlTokenKind::kRealLit : SqlTokenKind::kIntLit,
           std::move(digits));
      continue;
    }
    if (c == '\'') {
      advance();
      std::string body;
      while (true) {
        if (pos >= source.size()) {
          return Status::ParseError("unterminated SQL string at line " +
                                    std::to_string(line));
        }
        char ch = advance();
        if (ch == '\'') {
          if (peek() == '\'') {
            body.push_back(advance());
            continue;
          }
          break;
        }
        body.push_back(ch);
      }
      make(SqlTokenKind::kStringLit, std::move(body));
      continue;
    }
    switch (c) {
      case '(':
        advance();
        make(SqlTokenKind::kLParen, "(");
        break;
      case ')':
        advance();
        make(SqlTokenKind::kRParen, ")");
        break;
      case ',':
        advance();
        make(SqlTokenKind::kComma, ",");
        break;
      case ';':
        advance();
        make(SqlTokenKind::kSemicolon, ";");
        break;
      case '.':
        advance();
        make(SqlTokenKind::kDot, ".");
        break;
      case '*':
        advance();
        make(SqlTokenKind::kStar, "*");
        break;
      case '=':
        advance();
        make(SqlTokenKind::kEq, "=");
        break;
      case '<':
        advance();
        if (peek() == '>') {
          advance();
          make(SqlTokenKind::kNe, "<>");
        } else if (peek() == '=') {
          advance();
          make(SqlTokenKind::kLe, "<=");
        } else {
          make(SqlTokenKind::kLt, "<");
        }
        break;
      case '>':
        advance();
        if (peek() == '=') {
          advance();
          make(SqlTokenKind::kGe, ">=");
        } else {
          make(SqlTokenKind::kGt, ">");
        }
        break;
      case '!':
        advance();
        if (peek() == '=') {
          advance();
          make(SqlTokenKind::kNe, "!=");
        } else {
          return Status::ParseError("unexpected '!' at line " +
                                    std::to_string(line));
        }
        break;
      case '+':
        advance();
        make(SqlTokenKind::kPlus, "+");
        break;
      case '-':
        advance();
        make(SqlTokenKind::kMinus, "-");
        break;
      case '/':
        advance();
        make(SqlTokenKind::kSlash, "/");
        break;
      case '%':
        advance();
        make(SqlTokenKind::kPercent, "%");
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at line " + std::to_string(line));
    }
  }
  make(SqlTokenKind::kEnd, "");
  return tokens;
}

}  // namespace sql
}  // namespace mra
