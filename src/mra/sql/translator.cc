#include "mra/sql/translator.h"

#include "mra/sql/sql_parser.h"

namespace mra {
namespace sql {

Result<NameScope> NameScope::ForTables(const std::vector<std::string>& tables,
                                       const RelationProvider& provider) {
  if (tables.empty()) {
    return Status::InvalidArgument("FROM list must name at least one table");
  }
  NameScope scope;
  RelationSchema combined;
  for (const std::string& table : tables) {
    MRA_ASSIGN_OR_RETURN(const Relation* rel, provider.GetRelation(table));
    scope.tables_.push_back(
        {table, combined.arity(), rel->schema().arity()});
    combined = combined.Concat(rel->schema());
  }
  scope.combined_ = std::move(combined);
  return scope;
}

Result<size_t> NameScope::Resolve(const ColumnRef& ref) const {
  size_t found = combined_.arity();
  for (const TableEntry& table : tables_) {
    if (!ref.table.empty() && ref.table != table.name) continue;
    for (size_t i = 0; i < table.arity; ++i) {
      size_t global = table.offset + i;
      if (combined_.attribute(global).name != ref.column) continue;
      if (found != combined_.arity()) {
        return Status::InvalidArgument("ambiguous column reference " +
                                       ref.ToString());
      }
      found = global;
    }
  }
  if (found == combined_.arity()) {
    return Status::NotFound("unknown column " + ref.ToString());
  }
  return found;
}

Result<ExprPtr> TranslateExpr(const SqlExpr& expr, const NameScope& scope) {
  switch (expr.kind) {
    case SqlExpr::Kind::kColumn: {
      MRA_ASSIGN_OR_RETURN(size_t index, scope.Resolve(expr.column));
      return Attr(index);
    }
    case SqlExpr::Kind::kLiteral:
      return Lit(expr.literal);
    case SqlExpr::Kind::kUnary: {
      MRA_ASSIGN_OR_RETURN(ExprPtr operand, TranslateExpr(*expr.lhs, scope));
      return expr.unary_op == UnaryOp::kNeg ? Neg(std::move(operand))
                                            : Not(std::move(operand));
    }
    case SqlExpr::Kind::kBinary: {
      MRA_ASSIGN_OR_RETURN(ExprPtr lhs, TranslateExpr(*expr.lhs, scope));
      MRA_ASSIGN_OR_RETURN(ExprPtr rhs, TranslateExpr(*expr.rhs, scope));
      return ExprPtr(std::make_shared<BinaryExpr>(expr.binary_op,
                                                  std::move(lhs),
                                                  std::move(rhs)));
    }
    case SqlExpr::Kind::kAggregate:
      return Status::InvalidArgument(
          "aggregate " + expr.ToString() +
          " is only allowed in select lists and HAVING clauses");
  }
  return Status::Internal("bad SQL expression kind");
}

namespace {

// Builds the FROM-list product chain: t1 × t2 × … (left associated).
lang::RelExprPtr FromProduct(const std::vector<std::string>& tables) {
  auto name_node = [](const std::string& name) {
    auto node = std::make_shared<lang::RelExpr>();
    node->kind = lang::RelExpr::Kind::kName;
    node->name = name;
    return lang::RelExprPtr(node);
  };
  lang::RelExprPtr acc = name_node(tables[0]);
  for (size_t i = 1; i < tables.size(); ++i) {
    auto node = std::make_shared<lang::RelExpr>();
    node->kind = lang::RelExpr::Kind::kProduct;
    node->children = {std::move(acc), name_node(tables[i])};
    acc = node;
  }
  return acc;
}

lang::RelExprPtr WrapSelect(ExprPtr condition, lang::RelExprPtr input) {
  auto node = std::make_shared<lang::RelExpr>();
  node->kind = lang::RelExpr::Kind::kSelect;
  node->condition = std::move(condition);
  node->children = {std::move(input)};
  return node;
}

lang::RelExprPtr WrapProject(std::vector<ExprPtr> projections,
                             lang::RelExprPtr input) {
  auto node = std::make_shared<lang::RelExpr>();
  node->kind = lang::RelExpr::Kind::kProject;
  node->projections = std::move(projections);
  node->children = {std::move(input)};
  return node;
}

lang::RelExprPtr WrapUnique(lang::RelExprPtr input) {
  auto node = std::make_shared<lang::RelExpr>();
  node->kind = lang::RelExpr::Kind::kUnique;
  node->children = {std::move(input)};
  return node;
}

bool HasAggregates(const SelectStmt& stmt) {
  for (const SelectItem& item : stmt.items) {
    if (item.kind == SelectItem::Kind::kAggregate) return true;
  }
  return false;
}

bool ContainsAggregate(const SqlExpr& expr) {
  switch (expr.kind) {
    case SqlExpr::Kind::kAggregate:
      return true;
    case SqlExpr::Kind::kUnary:
      return ContainsAggregate(*expr.lhs);
    case SqlExpr::Kind::kBinary:
      return ContainsAggregate(*expr.lhs) || ContainsAggregate(*expr.rhs);
    default:
      return false;
  }
}

// Resolves one aggregate call to a position in `aggs`, appending a hidden
// AggSpec when the call has no select-list twin.
Result<size_t> ResolveAggregateCall(const SqlExpr& call,
                                    const NameScope& scope,
                                    std::vector<AggSpec>* aggs) {
  AggSpec spec;
  spec.kind = call.agg;
  if (call.lhs == nullptr) {
    spec.attr = 0;  // COUNT(*): dummy attribute.
  } else {
    if (call.lhs->kind != SqlExpr::Kind::kColumn) {
      return Status::InvalidArgument("aggregate argument must be a column: " +
                                     call.ToString());
    }
    MRA_ASSIGN_OR_RETURN(spec.attr, scope.Resolve(call.lhs->column));
  }
  for (size_t i = 0; i < aggs->size(); ++i) {
    if ((*aggs)[i].kind == spec.kind && (*aggs)[i].attr == spec.attr) {
      return i;
    }
  }
  aggs->push_back(std::move(spec));
  return aggs->size() - 1;
}

// Translates a HAVING expression into the group-by OUTPUT frame: grouped
// columns map to their key positions, aggregate calls to key-count + agg
// position (hidden aggregates are appended to `aggs` as needed).
Result<ExprPtr> TranslateHavingExpr(const SqlExpr& expr,
                                    const NameScope& scope,
                                    const std::vector<size_t>& keys,
                                    std::vector<AggSpec>* aggs) {
  switch (expr.kind) {
    case SqlExpr::Kind::kColumn: {
      MRA_ASSIGN_OR_RETURN(size_t index, scope.Resolve(expr.column));
      for (size_t k = 0; k < keys.size(); ++k) {
        if (keys[k] == index) return Attr(k);
      }
      return Status::InvalidArgument("HAVING references " +
                                     expr.column.ToString() +
                                     ", which is not in GROUP BY");
    }
    case SqlExpr::Kind::kLiteral:
      return Lit(expr.literal);
    case SqlExpr::Kind::kUnary: {
      MRA_ASSIGN_OR_RETURN(ExprPtr operand,
                           TranslateHavingExpr(*expr.lhs, scope, keys, aggs));
      return expr.unary_op == UnaryOp::kNeg ? Neg(std::move(operand))
                                            : Not(std::move(operand));
    }
    case SqlExpr::Kind::kBinary: {
      MRA_ASSIGN_OR_RETURN(ExprPtr lhs,
                           TranslateHavingExpr(*expr.lhs, scope, keys, aggs));
      MRA_ASSIGN_OR_RETURN(ExprPtr rhs,
                           TranslateHavingExpr(*expr.rhs, scope, keys, aggs));
      return ExprPtr(std::make_shared<BinaryExpr>(expr.binary_op,
                                                  std::move(lhs),
                                                  std::move(rhs)));
    }
    case SqlExpr::Kind::kAggregate: {
      MRA_ASSIGN_OR_RETURN(size_t pos,
                           ResolveAggregateCall(expr, scope, aggs));
      return Attr(keys.size() + pos);
    }
  }
  return Status::Internal("bad SQL expression kind");
}

// Resolves one ORDER BY column against the query's *output* frame: select
// aliases first, then (through `scope`) columns that survived into the
// output, whose source index is recorded in `sources` (nullopt for
// computed/aggregate outputs, addressable only by alias).
Result<size_t> ResolveOrderColumn(
    const ColumnRef& ref, const std::vector<std::string>& aliases,
    const std::vector<std::optional<size_t>>& sources,
    const NameScope& scope) {
  if (ref.table.empty()) {
    for (size_t i = 0; i < aliases.size(); ++i) {
      if (!aliases[i].empty() && aliases[i] == ref.column) return i;
    }
  }
  Result<size_t> resolved = scope.Resolve(ref);
  if (resolved.ok()) {
    for (size_t i = 0; i < sources.size(); ++i) {
      if (sources[i].has_value() && *sources[i] == resolved.value()) return i;
    }
  }
  return Status::NotFound("ORDER BY column " + ref.ToString() +
                          " is not in the select list");
}

// Wraps the translated query in a sort node when ORDER BY / LIMIT was
// given.  Outermost by design: SQL orders and limits the final result,
// after DISTINCT and HAVING.
Result<lang::RelExprPtr> WrapOrderByLimit(
    const SelectStmt& stmt, const std::vector<std::string>& aliases,
    const std::vector<std::optional<size_t>>& sources, const NameScope& scope,
    lang::RelExprPtr rel) {
  if (stmt.order_by.empty() && stmt.limit == 0) return rel;
  auto sort = std::make_shared<lang::RelExpr>();
  sort->kind = lang::RelExpr::Kind::kSort;
  for (const OrderItem& item : stmt.order_by) {
    MRA_ASSIGN_OR_RETURN(
        size_t pos, ResolveOrderColumn(item.column, aliases, sources, scope));
    sort->keys.push_back(pos);
    sort->sort_desc.push_back(item.desc);
  }
  sort->limit = stmt.limit;
  sort->children = {std::move(rel)};
  return lang::RelExprPtr(sort);
}

}  // namespace

Result<lang::RelExprPtr> TranslateSelect(const SelectStmt& stmt,
                                         const RelationProvider& provider) {
  MRA_ASSIGN_OR_RETURN(NameScope scope,
                       NameScope::ForTables(stmt.tables, provider));
  lang::RelExprPtr rel = FromProduct(stmt.tables);
  if (stmt.where != nullptr) {
    MRA_ASSIGN_OR_RETURN(ExprPtr cond, TranslateExpr(*stmt.where, scope));
    rel = WrapSelect(std::move(cond), std::move(rel));
  }

  const bool aggregate_query = HasAggregates(stmt) || !stmt.group_by.empty();
  if (!aggregate_query) {
    if (stmt.having != nullptr) {
      return Status::InvalidArgument(
          "HAVING requires GROUP BY or aggregates in the select list");
    }
    // Plain projection; SELECT * keeps every column.  Alongside each output
    // column, record its alias and (for plain column references) its source
    // index in the FROM product, so ORDER BY can address the output frame.
    std::vector<ExprPtr> projections;
    std::vector<std::string> out_aliases;
    std::vector<std::optional<size_t>> out_sources;
    for (const SelectItem& item : stmt.items) {
      switch (item.kind) {
        case SelectItem::Kind::kStar:
          for (size_t i = 0; i < scope.combined().arity(); ++i) {
            projections.push_back(Attr(i));
            out_aliases.emplace_back();
            out_sources.push_back(i);
          }
          break;
        case SelectItem::Kind::kExpr: {
          if (ContainsAggregate(*item.expr)) {
            return Status::InvalidArgument(
                "aggregate expressions in the select list must be bare "
                "calls: " +
                item.expr->ToString());
          }
          MRA_ASSIGN_OR_RETURN(ExprPtr e, TranslateExpr(*item.expr, scope));
          projections.push_back(std::move(e));
          out_aliases.push_back(item.alias);
          if (item.expr->kind == SqlExpr::Kind::kColumn) {
            MRA_ASSIGN_OR_RETURN(size_t src, scope.Resolve(item.expr->column));
            out_sources.push_back(src);
          } else {
            out_sources.push_back(std::nullopt);
          }
          break;
        }
        case SelectItem::Kind::kAggregate:
          return Status::Internal("unreachable");
      }
    }
    rel = WrapProject(std::move(projections), std::move(rel));
    if (stmt.distinct) rel = WrapUnique(std::move(rel));
    return WrapOrderByLimit(stmt, out_aliases, out_sources, scope,
                            std::move(rel));
  }

  // Aggregate query: GROUP BY keys + aggregate select items
  // (Definition 3.4 via the paper's own SQL equivalent in Example 3.2).
  std::vector<size_t> keys;
  for (const ColumnRef& ref : stmt.group_by) {
    MRA_ASSIGN_OR_RETURN(size_t index, scope.Resolve(ref));
    keys.push_back(index);
  }

  // Map each select item onto the groupby output: group keys come first,
  // aggregates after (in select-list order).
  std::vector<AggSpec> aggs;
  std::vector<size_t> output_positions;
  for (const SelectItem& item : stmt.items) {
    switch (item.kind) {
      case SelectItem::Kind::kStar:
        return Status::InvalidArgument(
            "SELECT * is not valid in an aggregate query");
      case SelectItem::Kind::kExpr: {
        if (item.expr->kind != SqlExpr::Kind::kColumn) {
          return Status::InvalidArgument(
              "non-aggregate select item must be a GROUP BY column: " +
              item.expr->ToString());
        }
        MRA_ASSIGN_OR_RETURN(size_t index, scope.Resolve(item.expr->column));
        size_t key_pos = keys.size();
        for (size_t k = 0; k < keys.size(); ++k) {
          if (keys[k] == index) {
            key_pos = k;
            break;
          }
        }
        if (key_pos == keys.size()) {
          return Status::InvalidArgument(
              "select item " + item.expr->ToString() +
              " does not appear in GROUP BY");
        }
        output_positions.push_back(key_pos);
        break;
      }
      case SelectItem::Kind::kAggregate: {
        AggSpec spec;
        spec.kind = item.agg;
        if (item.expr == nullptr) {
          spec.attr = 0;  // COUNT(*): the attribute is a dummy parameter.
        } else {
          if (item.expr->kind != SqlExpr::Kind::kColumn) {
            return Status::InvalidArgument(
                "aggregate argument must be a column: " +
                item.expr->ToString());
          }
          MRA_ASSIGN_OR_RETURN(spec.attr, scope.Resolve(item.expr->column));
        }
        spec.output_name = item.alias;
        output_positions.push_back(keys.size() + aggs.size());
        aggs.push_back(std::move(spec));
        break;
      }
    }
  }
  // HAVING may introduce hidden aggregates (ones not in the select list);
  // translate it before freezing the aggregate list.
  ExprPtr having;
  if (stmt.having != nullptr) {
    MRA_ASSIGN_OR_RETURN(having, TranslateHavingExpr(*stmt.having, scope,
                                                     keys, &aggs));
  }
  if (aggs.empty()) {
    return Status::InvalidArgument(
        "GROUP BY without aggregates is not supported (use SELECT DISTINCT)");
  }

  auto groupby = std::make_shared<lang::RelExpr>();
  groupby->kind = lang::RelExpr::Kind::kGroupBy;
  groupby->keys = keys;
  groupby->aggs = std::move(aggs);
  groupby->children = {std::move(rel)};
  lang::RelExprPtr result = groupby;

  // σ over Γ: HAVING in its algebraic form.
  if (having != nullptr) {
    result = WrapSelect(std::move(having), std::move(result));
  }

  // Reorder to the select-list order when it differs from keys ⊕ aggs
  // (hidden HAVING aggregates always force the projection).
  bool identity = output_positions.size() == keys.size() + groupby->aggs.size();
  for (size_t i = 0; identity && i < output_positions.size(); ++i) {
    identity = output_positions[i] == i;
  }
  if (!identity) {
    std::vector<ExprPtr> projections;
    projections.reserve(output_positions.size());
    for (size_t p : output_positions) projections.push_back(Attr(p));
    result = WrapProject(std::move(projections), std::move(result));
  }
  if (stmt.distinct) result = WrapUnique(std::move(result));

  // The final frame is in select-list order (the reorder projection above
  // guarantees it): group-key columns keep their FROM-product identity for
  // ORDER BY, aggregates are addressable by alias only.
  std::vector<std::string> out_aliases;
  std::vector<std::optional<size_t>> out_sources;
  for (const SelectItem& item : stmt.items) {
    out_aliases.push_back(item.alias);
    if (item.kind == SelectItem::Kind::kExpr) {
      MRA_ASSIGN_OR_RETURN(size_t src, scope.Resolve(item.expr->column));
      out_sources.push_back(src);
    } else {
      out_sources.push_back(std::nullopt);
    }
  }
  return WrapOrderByLimit(stmt, out_aliases, out_sources, scope,
                          std::move(result));
}

Result<Value> CoerceValue(const Value& v, Type target) {
  if (v.type() == target) return v;
  if (v.kind() == TypeKind::kInt && target.kind() == TypeKind::kReal) {
    return Value::Real(static_cast<double>(v.int_value()));
  }
  if (v.kind() == TypeKind::kInt && target.kind() == TypeKind::kDecimal) {
    return Value::Decimal(v.int_value());
  }
  return Status::TypeError("cannot coerce " + v.ToString() + " to " +
                           target.ToString());
}

Result<lang::Stmt> TranslateStatement(const SqlStatement& stmt,
                                      const RelationProvider& provider) {
  lang::Stmt out;
  if (const auto* select = std::get_if<SelectStmt>(&stmt)) {
    out.kind = lang::Stmt::Kind::kQuery;
    MRA_ASSIGN_OR_RETURN(out.expr, TranslateSelect(*select, provider));
    return out;
  }
  if (const auto* insert = std::get_if<InsertStmt>(&stmt)) {
    MRA_ASSIGN_OR_RETURN(const Relation* rel,
                         provider.GetRelation(insert->table));
    const RelationSchema& schema = rel->schema();
    Relation literal(schema);
    for (const std::vector<Value>& row : insert->rows) {
      if (row.size() != schema.arity()) {
        return Status::InvalidArgument(
            "INSERT row has " + std::to_string(row.size()) +
            " values, table " + insert->table + " has " +
            std::to_string(schema.arity()) + " columns");
      }
      std::vector<Value> coerced;
      coerced.reserve(row.size());
      for (size_t i = 0; i < row.size(); ++i) {
        MRA_ASSIGN_OR_RETURN(Value v, CoerceValue(row[i], schema.TypeOf(i)));
        coerced.push_back(std::move(v));
      }
      MRA_RETURN_IF_ERROR(literal.Insert(Tuple(std::move(coerced))));
    }
    out.kind = lang::Stmt::Kind::kInsert;
    out.target = insert->table;
    auto node = std::make_shared<lang::RelExpr>();
    node->kind = lang::RelExpr::Kind::kLiteral;
    node->literal = std::move(literal);
    out.expr = std::move(node);
    return out;
  }
  if (const auto* update = std::get_if<UpdateStmt>(&stmt)) {
    MRA_ASSIGN_OR_RETURN(NameScope scope,
                         NameScope::ForTables({update->table}, provider));
    // E = σ_p(R), or R itself without WHERE (Example 4.1).
    lang::RelExprPtr target_expr = FromProduct({update->table});
    if (update->where != nullptr) {
      MRA_ASSIGN_OR_RETURN(ExprPtr cond, TranslateExpr(*update->where, scope));
      target_expr = WrapSelect(std::move(cond), std::move(target_expr));
    }
    // α: assigned columns take their SET expression, others pass through.
    std::vector<ExprPtr> alpha;
    const RelationSchema& schema = scope.combined();
    alpha.reserve(schema.arity());
    for (size_t i = 0; i < schema.arity(); ++i) alpha.push_back(Attr(i));
    std::vector<bool> assigned(schema.arity(), false);
    for (const auto& [column, value] : update->assignments) {
      MRA_ASSIGN_OR_RETURN(size_t index,
                           scope.Resolve(ColumnRef{"", column}));
      if (assigned[index]) {
        return Status::InvalidArgument("column " + column +
                                       " assigned twice in UPDATE");
      }
      assigned[index] = true;
      MRA_ASSIGN_OR_RETURN(alpha[index], TranslateExpr(*value, scope));
    }
    out.kind = lang::Stmt::Kind::kUpdate;
    out.target = update->table;
    out.expr = std::move(target_expr);
    out.alpha = std::move(alpha);
    return out;
  }
  if (const auto* del = std::get_if<DeleteStmt>(&stmt)) {
    MRA_ASSIGN_OR_RETURN(NameScope scope,
                         NameScope::ForTables({del->table}, provider));
    lang::RelExprPtr target_expr = FromProduct({del->table});
    if (del->where != nullptr) {
      MRA_ASSIGN_OR_RETURN(ExprPtr cond, TranslateExpr(*del->where, scope));
      target_expr = WrapSelect(std::move(cond), std::move(target_expr));
    }
    out.kind = lang::Stmt::Kind::kDelete;
    out.target = del->table;
    out.expr = std::move(target_expr);
    return out;
  }
  if (const auto* create = std::get_if<CreateTableStmt>(&stmt)) {
    out.kind = lang::Stmt::Kind::kCreate;
    out.target = create->schema.name();
    out.schema = create->schema;
    return out;
  }
  if (const auto* drop = std::get_if<DropTableStmt>(&stmt)) {
    out.kind = lang::Stmt::Kind::kDrop;
    out.target = drop->table;
    return out;
  }
  if (const auto* explain = std::get_if<ExplainStmt>(&stmt)) {
    out.kind = lang::Stmt::Kind::kExplain;
    out.analyze = explain->analyze;
    MRA_ASSIGN_OR_RETURN(out.expr,
                         TranslateSelect(*explain->select, provider));
    return out;
  }
  if (std::holds_alternative<SetStmt>(stmt)) {
    // SET is a session-config action, handled by SqlSession::ExecuteOne
    // directly — it never reaches statement translation.
    return Status::InvalidArgument("SET has no statement translation");
  }
  return Status::InvalidArgument(
      "transaction control has no statement translation");
}

SqlSession::~SqlSession() {
  if (txn_ != nullptr) {
    (void)txn_->Abort();
  }
}

Status SqlSession::ExecuteOne(
    const SqlStatement& stmt,
    const lang::Interpreter::QueryCallback& on_query) {
  if (const auto* control = std::get_if<TxnControl>(&stmt)) {
    switch (*control) {
      case TxnControl::kBegin: {
        if (txn_ != nullptr) {
          return Status::TxnError("transaction already in progress");
        }
        MRA_ASSIGN_OR_RETURN(txn_, db_->Begin());
        return Status::OK();
      }
      case TxnControl::kCommit: {
        if (txn_ == nullptr) {
          return Status::TxnError("COMMIT outside a transaction");
        }
        Status s = txn_->Commit();
        txn_.reset();
        return s;
      }
      case TxnControl::kRollback: {
        if (txn_ == nullptr) {
          return Status::TxnError("ROLLBACK outside a transaction");
        }
        Status s = txn_->Abort();
        txn_.reset();
        return s;
      }
    }
  }

  // DDL: top-level only, like XRA.
  if (std::holds_alternative<CreateTableStmt>(stmt) ||
      std::holds_alternative<DropTableStmt>(stmt)) {
    if (txn_ != nullptr) {
      return Status::TxnError("DDL is not allowed inside a transaction");
    }
    if (const auto* create = std::get_if<CreateTableStmt>(&stmt)) {
      return db_->CreateRelation(create->schema);
    }
    return db_->DropRelation(std::get<DropTableStmt>(stmt).table);
  }

  // ANALYZE: top-level only — statistics describe committed state.
  if (const auto* analyze = std::get_if<AnalyzeStmt>(&stmt)) {
    if (txn_ != nullptr) {
      return Status::TxnError("ANALYZE is not allowed inside a transaction");
    }
    MRA_ASSIGN_OR_RETURN(stats::TableStatistics stats,
                         db_->Analyze(analyze->table));
    if (on_query) {
      Relation rel(
          RelationSchema("analyze", {Attribute{"summary", Type::String()}}));
      rel.InsertUnchecked(
          Tuple({Value::Str(analyze->table + ": " + stats.ToString())}), 1);
      on_query("ANALYZE " + analyze->table, rel);
    }
    return Status::OK();
  }

  // SET: a session-config override, applied between statements.  Top-level
  // only, like the XRA `set` — earlier statements of an open bracket
  // already ran under the old knobs.
  if (const auto* set = std::get_if<SetStmt>(&stmt)) {
    if (txn_ != nullptr) {
      return Status::TxnError("SET is not allowed inside a transaction");
    }
    return interp_.SetOption(set->knob, set->value);
  }

  if (txn_ != nullptr) {
    // Translate against the transaction's view (read-your-writes).  Any
    // statement failure — translation or execution — aborts the whole
    // bracket (Definition 4.3 atomicity).
    Result<lang::Stmt> translated = TranslateStatement(stmt, *txn_);
    Status s = translated.ok()
                   ? interp_.ExecuteStmt(*translated, *txn_, on_query)
                   : translated.status();
    if (!s.ok()) {
      (void)txn_->Abort();
      txn_.reset();
    }
    return s;
  }

  // Autocommit: a single-statement transaction bracket.
  MRA_ASSIGN_OR_RETURN(std::unique_ptr<Transaction> txn, db_->Begin());
  MRA_ASSIGN_OR_RETURN(lang::Stmt translated, TranslateStatement(stmt, *txn));
  Status s = interp_.ExecuteStmt(translated, *txn, on_query);
  if (!s.ok()) {
    (void)txn->Abort();
    return s;
  }
  return txn->Commit();
}

Status SqlSession::Execute(std::string_view sql_text,
                           const lang::Interpreter::QueryCallback& on_query) {
  MRA_ASSIGN_OR_RETURN(std::vector<SqlStatement> stmts, ParseSql(sql_text));
  for (const SqlStatement& stmt : stmts) {
    MRA_RETURN_IF_ERROR(ExecuteOne(stmt, on_query));
  }
  return Status::OK();
}

Result<std::vector<Relation>> SqlSession::ExecuteCollect(
    std::string_view sql_text) {
  std::vector<Relation> results;
  MRA_RETURN_IF_ERROR(
      Execute(sql_text, [&results](const std::string&, const Relation& r) {
        results.push_back(r);
      }));
  return results;
}

}  // namespace sql
}  // namespace mra
