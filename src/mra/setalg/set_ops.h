// The baseline comparator: the classical *set*-semantics relational algebra.
//
// The paper's introduction motivates bag semantics with two observations:
// (1) set semantics forces duplicate elimination inside operators, which is
// expensive (claim C1 in DESIGN.md), and (2) set semantics silently breaks
// aggregate queries when a projection is inserted to shrink intermediate
// results (Example 3.2).  This module implements a faithful set-based
// algebra — every operator's output is duplicate-free — so tests and
// benchmarks can demonstrate both effects against the multi-set operators
// of mra/algebra/ops.h.
//
// All relations returned here are sets (every multiplicity is 1).  Inputs
// are interpreted set-wise: a tuple is "in" an operand iff its multiplicity
// is positive.

#ifndef MRA_SETALG_SET_OPS_H_
#define MRA_SETALG_SET_OPS_H_

#include <vector>

#include "mra/algebra/aggregate.h"
#include "mra/core/relation.h"
#include "mra/expr/scalar_expr.h"

namespace mra {
namespace setalg {

/// δE — the set interpretation of a (possibly duplicate-carrying) relation.
Result<Relation> ToSet(const Relation& input);

/// E1 ∪ E2 (set union).
Result<Relation> Union(const Relation& left, const Relation& right);

/// E1 − E2 (set difference: membership, not multiplicity subtraction).
Result<Relation> Difference(const Relation& left, const Relation& right);

/// E1 ∩ E2 (set intersection).
Result<Relation> Intersect(const Relation& left, const Relation& right);

/// E1 × E2 (set product of the supports).
Result<Relation> Product(const Relation& left, const Relation& right);

/// σ_φ E over the support.
Result<Relation> Select(const ExprPtr& condition, const Relation& input);

/// π_α E with duplicate elimination — the classical projection, and the
/// operator whose hidden δ both costs time (C1) and breaks Example 3.2.
Result<Relation> Project(const std::vector<ExprPtr>& exprs,
                         const Relation& input);

/// E1 ⋈_φ E2 over the supports.
Result<Relation> Join(const ExprPtr& condition, const Relation& left,
                      const Relation& right);

/// Γ_{α,f,p} over the support: aggregates see each distinct tuple once —
/// which is precisely why set semantics yields incorrect aggregates after a
/// duplicate-removing projection (Example 3.2).
Result<Relation> GroupBy(const std::vector<size_t>& keys,
                         const std::vector<AggSpec>& aggs,
                         const Relation& input);

}  // namespace setalg
}  // namespace mra

#endif  // MRA_SETALG_SET_OPS_H_
