#include "mra/setalg/set_ops.h"

#include "mra/algebra/ops.h"

namespace mra {
namespace setalg {

Result<Relation> ToSet(const Relation& input) { return ops::Unique(input); }

Result<Relation> Union(const Relation& left, const Relation& right) {
  MRA_ASSIGN_OR_RETURN(Relation bag, ops::Union(left, right));
  return ops::Unique(bag);
}

Result<Relation> Difference(const Relation& left, const Relation& right) {
  if (!left.schema().CompatibleWith(right.schema())) {
    return Status::InvalidArgument(
        "set difference requires operands of one schema");
  }
  Relation out(left.schema());
  for (const auto& [tuple, count] : left) {
    (void)count;
    if (!right.Contains(tuple)) out.InsertUnchecked(tuple, 1);
  }
  return out;
}

Result<Relation> Intersect(const Relation& left, const Relation& right) {
  MRA_ASSIGN_OR_RETURN(Relation bag, ops::Intersect(left, right));
  return ops::Unique(bag);
}

Result<Relation> Product(const Relation& left, const Relation& right) {
  MRA_ASSIGN_OR_RETURN(Relation ls, ToSet(left));
  MRA_ASSIGN_OR_RETURN(Relation rs, ToSet(right));
  return ops::Product(ls, rs);
}

Result<Relation> Select(const ExprPtr& condition, const Relation& input) {
  MRA_ASSIGN_OR_RETURN(Relation set, ToSet(input));
  return ops::Select(condition, set);
}

Result<Relation> Project(const std::vector<ExprPtr>& exprs,
                         const Relation& input) {
  MRA_ASSIGN_OR_RETURN(Relation bag, ops::Project(exprs, input));
  return ops::Unique(bag);
}

Result<Relation> Join(const ExprPtr& condition, const Relation& left,
                      const Relation& right) {
  MRA_ASSIGN_OR_RETURN(Relation ls, ToSet(left));
  MRA_ASSIGN_OR_RETURN(Relation rs, ToSet(right));
  return ops::Join(condition, ls, rs);
}

Result<Relation> GroupBy(const std::vector<size_t>& keys,
                         const std::vector<AggSpec>& aggs,
                         const Relation& input) {
  MRA_ASSIGN_OR_RETURN(Relation set, ToSet(input));
  return ops::GroupBy(keys, aggs, set);
}

}  // namespace setalg
}  // namespace mra
