#include "mra/storage/wal.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>

#include "mra/fault/failpoint.h"
#include "mra/obs/metrics.h"
#include "mra/storage/serializer.h"

namespace mra {
namespace storage {

namespace {

constexpr uint32_t kFrameMagic = 0x4d524157;  // "WARM" little-endian.
constexpr size_t kHeaderSize = 12;

std::string EncodeU32(uint32_t v) {
  std::string out(4, '\0');
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  return out;
}

uint32_t DecodeU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

WalWriter::~WalWriter() { Close(); }

WalWriter::WalWriter(WalWriter&& other) noexcept : file_(other.file_) {
  other.file_ = nullptr;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    Close();
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

Result<WalWriter> WalWriter::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IoError("cannot open WAL " + path + ": " +
                           std::strerror(errno));
  }
  WalWriter writer;
  writer.file_ = f;
  return writer;
}

Status WalWriter::Append(std::string_view payload, bool sync) {
  // Registered once; the registry hands out stable pointers.
  static obs::Counter* appends =
      obs::MetricsRegistry::Global().GetCounter("wal.appends");
  static obs::Counter* append_bytes =
      obs::MetricsRegistry::Global().GetCounter("wal.append_bytes");
  static obs::Histogram* append_us =
      obs::MetricsRegistry::Global().GetHistogram("wal.append_us");

  static fault::Failpoint* fp_append =
      fault::FaultRegistry::Global().Get("wal.append");

  if (file_ == nullptr) return Status::IoError("WAL is closed");
  uint64_t t0 = NowMicros();
  std::string frame = EncodeU32(kFrameMagic);
  frame += EncodeU32(static_cast<uint32_t>(payload.size()));
  frame += EncodeU32(Crc32(payload));
  frame.append(payload.data(), payload.size());
  fault::Failpoint::Outcome fo = fp_append->Hit();
  if (fo.kind == fault::ActionKind::kError) return fp_append->InjectedError();
  if (fo.kind == fault::ActionKind::kTorn) {
    // Persist only a prefix of the frame, exactly as a crash mid-write
    // would, then fail the append.
    size_t keep = std::min<size_t>(fo.keep_bytes, frame.size());
    std::fwrite(frame.data(), 1, keep, file_);
    std::fflush(file_);
    return fp_append->InjectedError();
  }
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::IoError("short write to WAL");
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError("cannot flush WAL");
  }
  appends->Inc();
  append_bytes->Inc(frame.size());
  Status s = sync ? Sync() : Status::OK();
  append_us->Observe(NowMicros() - t0);
  return s;
}

Status WalWriter::Sync() {
  static obs::Counter* fsyncs =
      obs::MetricsRegistry::Global().GetCounter("wal.fsyncs");
  static obs::Histogram* fsync_us =
      obs::MetricsRegistry::Global().GetHistogram("wal.fsync_us");

  static fault::Failpoint* fp_sync =
      fault::FaultRegistry::Global().Get("wal.sync");

  if (file_ == nullptr) return Status::IoError("WAL is closed");
  MRA_RETURN_IF_ERROR(fault::InjectIfArmed(fp_sync));
  uint64_t t0 = NowMicros();
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IoError(std::string("fsync failed: ") +
                           std::strerror(errno));
  }
  fsyncs->Inc();
  fsync_us->Observe(NowMicros() - t0);
  return Status::OK();
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

namespace {

/// Counts frames after a corruption point that still look structurally
/// sound (magic at some offset, length that fits the file) — a
/// best-effort tally of how many records a salvage discards, on top of
/// the corrupt frame itself.
uint64_t CountResyncFrames(std::string_view contents, size_t from) {
  uint64_t found = 0;
  size_t scan = from;
  while (scan + kHeaderSize <= contents.size()) {
    if (DecodeU32(contents.data() + scan) != kFrameMagic) {
      ++scan;
      continue;
    }
    uint32_t len = DecodeU32(contents.data() + scan + 4);
    if (scan + kHeaderSize + len > contents.size()) {
      ++scan;
      continue;
    }
    ++found;
    scan += kHeaderSize + len;
  }
  return found;
}

/// Finishes a kPrefix read: marks the result salvaged at `pos` and
/// reports what was dropped through the wal.salvaged_* metrics.
WalReadResult SalvagePrefix(WalReadResult result, std::string_view contents,
                            size_t pos) {
  result.salvaged = true;
  result.valid_bytes = pos;
  result.discarded_records =
      1 + CountResyncFrames(contents, pos + 1);
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("wal.salvaged_opens")->Inc();
  reg.GetCounter("wal.salvaged_bytes")->Inc(contents.size() - pos);
  reg.GetCounter("wal.salvaged_records")->Inc(result.discarded_records);
  return result;
}

}  // namespace

Result<WalReadResult> ReadWal(const std::string& path, Salvage salvage) {
  static fault::Failpoint* fp_replay =
      fault::FaultRegistry::Global().Get("wal.replay");
  MRA_RETURN_IF_ERROR(fault::InjectIfArmed(fp_replay));

  WalReadResult result;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return result;  // No log yet: empty history.

  std::string contents;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IoError("cannot read WAL " + path);

  size_t pos = 0;
  while (pos < contents.size()) {
    if (pos + kHeaderSize > contents.size()) {
      result.torn_tail = true;  // Incomplete header at EOF.
      return result;
    }
    uint32_t magic = DecodeU32(contents.data() + pos);
    if (magic != kFrameMagic) {
      if (salvage == Salvage::kPrefix) {
        return SalvagePrefix(std::move(result), contents, pos);
      }
      return Status::Corruption("bad WAL frame magic at offset " +
                                std::to_string(pos));
    }
    uint32_t len = DecodeU32(contents.data() + pos + 4);
    uint32_t crc = DecodeU32(contents.data() + pos + 8);
    if (pos + kHeaderSize + len > contents.size()) {
      result.torn_tail = true;  // Incomplete payload at EOF.
      return result;
    }
    std::string_view payload(contents.data() + pos + kHeaderSize, len);
    if (Crc32(payload) != crc) {
      // A bad CRC on the final record is a torn tail; earlier it is real
      // corruption.
      if (pos + kHeaderSize + len == contents.size()) {
        result.torn_tail = true;
        return result;
      }
      if (salvage == Salvage::kPrefix) {
        return SalvagePrefix(std::move(result), contents, pos);
      }
      return Status::Corruption("WAL CRC mismatch at offset " +
                                std::to_string(pos));
    }
    result.records.emplace_back(payload);
    pos += kHeaderSize + len;
    result.valid_bytes = pos;
  }
  return result;
}

Status TruncateWal(const std::string& path) {
  std::error_code ec;
  std::filesystem::resize_file(path, 0, ec);
  if (ec && ec != std::errc::no_such_file_or_directory) {
    return Status::IoError("cannot truncate WAL " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

Status TruncateWalToOffset(const std::string& path, uint64_t valid_bytes) {
  std::error_code ec;
  std::filesystem::resize_file(path, valid_bytes, ec);
  if (ec) {
    return Status::IoError("cannot truncate WAL " + path + " to " +
                           std::to_string(valid_bytes) + " bytes: " +
                           ec.message());
  }
  obs::MetricsRegistry::Global().GetCounter("wal.truncated_tails")->Inc();
  return Status::OK();
}

}  // namespace storage
}  // namespace mra
