// Binary serialization of scalar expressions and logical plans.  Used to
// persist integrity constraints (their violation queries are plans) in the
// WAL and checkpoint; also usable for shipping plans between processes.
//
// Decoding rebuilds plans through the Plan builder functions, so every
// decoded plan is re-type-checked; corrupt or inconsistent bytes surface
// as Corruption/TypeError rather than invalid plans.

#ifndef MRA_STORAGE_PLAN_SERIALIZER_H_
#define MRA_STORAGE_PLAN_SERIALIZER_H_

#include "mra/algebra/plan.h"
#include "mra/storage/serializer.h"

namespace mra {
namespace storage {

/// Appends an encoded expression tree.
void EncodeExpr(Encoder* encoder, const ScalarExpr& expr);

/// Decodes one expression tree.
Result<ExprPtr> DecodeExpr(Decoder* decoder);

/// Appends an encoded logical plan.
void EncodePlan(Encoder* encoder, const Plan& plan);

/// Decodes one logical plan, re-validating every node.
Result<PlanPtr> DecodePlan(Decoder* decoder);

/// Convenience: plan → bytes and back.
std::string EncodePlanToString(const Plan& plan);
Result<PlanPtr> DecodePlanFromString(std::string_view data);

}  // namespace storage
}  // namespace mra

#endif  // MRA_STORAGE_PLAN_SERIALIZER_H_
