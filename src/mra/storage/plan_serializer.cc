#include "mra/storage/plan_serializer.h"

namespace mra {
namespace storage {

namespace {

// Guards recursive decoding against adversarial deeply nested input.
constexpr int kMaxDepth = 512;

Result<ExprPtr> DecodeExprAtDepth(Decoder* decoder, int depth);
Result<PlanPtr> DecodePlanAtDepth(Decoder* decoder, int depth);

}  // namespace

void EncodeExpr(Encoder* encoder, const ScalarExpr& expr) {
  encoder->PutU8(static_cast<uint8_t>(expr.kind()));
  switch (expr.kind()) {
    case ExprKind::kAttrRef:
      encoder->PutU64(static_cast<const AttrRefExpr&>(expr).index());
      return;
    case ExprKind::kLiteral:
      encoder->PutValue(static_cast<const LiteralExpr&>(expr).value());
      return;
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(expr);
      encoder->PutU8(static_cast<uint8_t>(u.op()));
      EncodeExpr(encoder, *u.operand());
      return;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      encoder->PutU8(static_cast<uint8_t>(b.op()));
      EncodeExpr(encoder, *b.lhs());
      EncodeExpr(encoder, *b.rhs());
      return;
    }
  }
}

namespace {

Result<ExprPtr> DecodeExprAtDepth(Decoder* decoder, int depth) {
  if (depth > kMaxDepth) {
    return Status::Corruption("expression nesting too deep");
  }
  MRA_ASSIGN_OR_RETURN(uint8_t kind, decoder->GetU8());
  switch (static_cast<ExprKind>(kind)) {
    case ExprKind::kAttrRef: {
      MRA_ASSIGN_OR_RETURN(uint64_t index, decoder->GetU64());
      return Attr(static_cast<size_t>(index));
    }
    case ExprKind::kLiteral: {
      MRA_ASSIGN_OR_RETURN(Value v, decoder->GetValue());
      return Lit(std::move(v));
    }
    case ExprKind::kUnary: {
      MRA_ASSIGN_OR_RETURN(uint8_t op, decoder->GetU8());
      if (op > static_cast<uint8_t>(UnaryOp::kNot)) {
        return Status::Corruption("bad unary op tag");
      }
      MRA_ASSIGN_OR_RETURN(ExprPtr operand,
                           DecodeExprAtDepth(decoder, depth + 1));
      return ExprPtr(std::make_shared<UnaryExpr>(static_cast<UnaryOp>(op),
                                                 std::move(operand)));
    }
    case ExprKind::kBinary: {
      MRA_ASSIGN_OR_RETURN(uint8_t op, decoder->GetU8());
      if (op > static_cast<uint8_t>(BinaryOp::kOr)) {
        return Status::Corruption("bad binary op tag");
      }
      MRA_ASSIGN_OR_RETURN(ExprPtr lhs, DecodeExprAtDepth(decoder, depth + 1));
      MRA_ASSIGN_OR_RETURN(ExprPtr rhs, DecodeExprAtDepth(decoder, depth + 1));
      return ExprPtr(std::make_shared<BinaryExpr>(static_cast<BinaryOp>(op),
                                                  std::move(lhs),
                                                  std::move(rhs)));
    }
  }
  return Status::Corruption("bad expression kind tag");
}

}  // namespace

Result<ExprPtr> DecodeExpr(Decoder* decoder) {
  return DecodeExprAtDepth(decoder, 0);
}

void EncodePlan(Encoder* encoder, const Plan& plan) {
  encoder->PutU8(static_cast<uint8_t>(plan.kind()));
  switch (plan.kind()) {
    case PlanKind::kScan:
      encoder->PutString(plan.relation_name());
      encoder->PutSchema(plan.schema());
      return;
    case PlanKind::kConstRel:
      encoder->PutRelation(plan.const_relation());
      return;
    case PlanKind::kSelect:
    case PlanKind::kJoin:
      EncodeExpr(encoder, *plan.condition());
      break;
    case PlanKind::kProject: {
      const auto& exprs = plan.projections();
      encoder->PutU32(static_cast<uint32_t>(exprs.size()));
      for (const ExprPtr& e : exprs) EncodeExpr(encoder, *e);
      for (const Attribute& a : plan.schema().attributes()) {
        encoder->PutString(a.name);
      }
      break;
    }
    case PlanKind::kGroupBy: {
      const auto& keys = plan.group_keys();
      encoder->PutU32(static_cast<uint32_t>(keys.size()));
      for (size_t k : keys) encoder->PutU64(k);
      const auto& aggs = plan.aggregates();
      encoder->PutU32(static_cast<uint32_t>(aggs.size()));
      for (size_t i = 0; i < aggs.size(); ++i) {
        encoder->PutU8(static_cast<uint8_t>(aggs[i].kind));
        encoder->PutU64(aggs[i].attr);
        encoder->PutString(
            plan.schema().attribute(keys.size() + i).name);
      }
      break;
    }
    case PlanKind::kSort: {
      const auto& keys = plan.sort_keys();
      encoder->PutU32(static_cast<uint32_t>(keys.size()));
      for (size_t i = 0; i < keys.size(); ++i) {
        encoder->PutU64(keys[i]);
        encoder->PutU8(plan.sort_desc()[i] ? 1 : 0);
      }
      encoder->PutU64(plan.sort_limit());
      break;
    }
    default:
      break;  // kUnion/kDifference/kIntersect/kProduct/kUnique/kClosure:
              // children only.
  }
  for (const PlanPtr& child : plan.children()) {
    EncodePlan(encoder, *child);
  }
}

namespace {

Result<PlanPtr> DecodePlanAtDepth(Decoder* decoder, int depth) {
  if (depth > kMaxDepth) return Status::Corruption("plan nesting too deep");
  MRA_ASSIGN_OR_RETURN(uint8_t raw_kind, decoder->GetU8());
  if (raw_kind > static_cast<uint8_t>(PlanKind::kSort)) {
    return Status::Corruption("bad plan kind tag");
  }
  PlanKind kind = static_cast<PlanKind>(raw_kind);
  auto child = [decoder, depth] { return DecodePlanAtDepth(decoder, depth + 1); };
  switch (kind) {
    case PlanKind::kScan: {
      MRA_ASSIGN_OR_RETURN(std::string name, decoder->GetString());
      MRA_ASSIGN_OR_RETURN(RelationSchema schema, decoder->GetSchema());
      return Plan::Scan(std::move(name), std::move(schema));
    }
    case PlanKind::kConstRel: {
      MRA_ASSIGN_OR_RETURN(Relation rel, decoder->GetRelation());
      return Plan::ConstRel(std::move(rel));
    }
    case PlanKind::kUnion: {
      MRA_ASSIGN_OR_RETURN(PlanPtr l, child());
      MRA_ASSIGN_OR_RETURN(PlanPtr r, child());
      return Plan::Union(std::move(l), std::move(r));
    }
    case PlanKind::kDifference: {
      MRA_ASSIGN_OR_RETURN(PlanPtr l, child());
      MRA_ASSIGN_OR_RETURN(PlanPtr r, child());
      return Plan::Difference(std::move(l), std::move(r));
    }
    case PlanKind::kIntersect: {
      MRA_ASSIGN_OR_RETURN(PlanPtr l, child());
      MRA_ASSIGN_OR_RETURN(PlanPtr r, child());
      return Plan::Intersect(std::move(l), std::move(r));
    }
    case PlanKind::kProduct: {
      MRA_ASSIGN_OR_RETURN(PlanPtr l, child());
      MRA_ASSIGN_OR_RETURN(PlanPtr r, child());
      return Plan::Product(std::move(l), std::move(r));
    }
    case PlanKind::kJoin: {
      MRA_ASSIGN_OR_RETURN(ExprPtr condition, DecodeExpr(decoder));
      MRA_ASSIGN_OR_RETURN(PlanPtr l, child());
      MRA_ASSIGN_OR_RETURN(PlanPtr r, child());
      return Plan::Join(std::move(condition), std::move(l), std::move(r));
    }
    case PlanKind::kSelect: {
      MRA_ASSIGN_OR_RETURN(ExprPtr condition, DecodeExpr(decoder));
      MRA_ASSIGN_OR_RETURN(PlanPtr input, child());
      return Plan::Select(std::move(condition), std::move(input));
    }
    case PlanKind::kProject: {
      MRA_ASSIGN_OR_RETURN(uint32_t n, decoder->GetU32());
      std::vector<ExprPtr> exprs;
      exprs.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        MRA_ASSIGN_OR_RETURN(ExprPtr e, DecodeExpr(decoder));
        exprs.push_back(std::move(e));
      }
      std::vector<std::string> names;
      names.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        MRA_ASSIGN_OR_RETURN(std::string name, decoder->GetString());
        names.push_back(std::move(name));
      }
      MRA_ASSIGN_OR_RETURN(PlanPtr input, child());
      return Plan::Project(std::move(exprs), std::move(input),
                           std::move(names));
    }
    case PlanKind::kUnique: {
      MRA_ASSIGN_OR_RETURN(PlanPtr input, child());
      return Plan::Unique(std::move(input));
    }
    case PlanKind::kGroupBy: {
      MRA_ASSIGN_OR_RETURN(uint32_t nkeys, decoder->GetU32());
      std::vector<size_t> keys;
      keys.reserve(nkeys);
      for (uint32_t i = 0; i < nkeys; ++i) {
        MRA_ASSIGN_OR_RETURN(uint64_t k, decoder->GetU64());
        keys.push_back(static_cast<size_t>(k));
      }
      MRA_ASSIGN_OR_RETURN(uint32_t naggs, decoder->GetU32());
      std::vector<AggSpec> aggs;
      aggs.reserve(naggs);
      for (uint32_t i = 0; i < naggs; ++i) {
        MRA_ASSIGN_OR_RETURN(uint8_t agg_kind, decoder->GetU8());
        if (agg_kind > static_cast<uint8_t>(AggKind::kMax)) {
          return Status::Corruption("bad aggregate kind tag");
        }
        MRA_ASSIGN_OR_RETURN(uint64_t attr, decoder->GetU64());
        MRA_ASSIGN_OR_RETURN(std::string name, decoder->GetString());
        aggs.push_back(AggSpec{static_cast<AggKind>(agg_kind),
                               static_cast<size_t>(attr), std::move(name)});
      }
      MRA_ASSIGN_OR_RETURN(PlanPtr input, child());
      return Plan::GroupBy(std::move(keys), std::move(aggs),
                           std::move(input));
    }
    case PlanKind::kClosure: {
      MRA_ASSIGN_OR_RETURN(PlanPtr input, child());
      return Plan::Closure(std::move(input));
    }
    case PlanKind::kSort: {
      MRA_ASSIGN_OR_RETURN(uint32_t nkeys, decoder->GetU32());
      std::vector<size_t> keys;
      std::vector<bool> desc;
      keys.reserve(nkeys);
      desc.reserve(nkeys);
      for (uint32_t i = 0; i < nkeys; ++i) {
        MRA_ASSIGN_OR_RETURN(uint64_t k, decoder->GetU64());
        MRA_ASSIGN_OR_RETURN(uint8_t d, decoder->GetU8());
        keys.push_back(static_cast<size_t>(k));
        desc.push_back(d != 0);
      }
      MRA_ASSIGN_OR_RETURN(uint64_t limit, decoder->GetU64());
      MRA_ASSIGN_OR_RETURN(PlanPtr input, child());
      return Plan::Sort(std::move(keys), std::move(desc), limit,
                        std::move(input));
    }
  }
  return Status::Corruption("bad plan kind tag");
}

}  // namespace

Result<PlanPtr> DecodePlan(Decoder* decoder) {
  return DecodePlanAtDepth(decoder, 0);
}

std::string EncodePlanToString(const Plan& plan) {
  Encoder encoder;
  EncodePlan(&encoder, plan);
  return encoder.TakeBuffer();
}

Result<PlanPtr> DecodePlanFromString(std::string_view data) {
  Decoder decoder(data);
  MRA_ASSIGN_OR_RETURN(PlanPtr plan, DecodePlan(&decoder));
  if (!decoder.AtEnd()) {
    return Status::Corruption("trailing bytes after encoded plan");
  }
  return plan;
}

}  // namespace storage
}  // namespace mra
