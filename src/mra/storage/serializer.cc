#include "mra/storage/serializer.h"

#include <array>
#include <cstring>

#include "mra/catalog/catalog.h"

namespace mra {
namespace storage {

namespace {

// Arbitrary but checked: refuses absurd sizes instead of bad_alloc on
// corrupt input.
constexpr uint32_t kMaxStringLen = 1u << 30;

}  // namespace

void Encoder::PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void Encoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void Encoder::PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

void Encoder::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Encoder::PutString(std::string_view v) {
  PutU32(static_cast<uint32_t>(v.size()));
  buffer_.append(v.data(), v.size());
}

void Encoder::PutValue(const Value& v) {
  PutU8(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case TypeKind::kBool:
      PutU8(v.bool_value() ? 1 : 0);
      return;
    case TypeKind::kInt:
      PutI64(v.int_value());
      return;
    case TypeKind::kDecimal:
      PutI64(v.decimal_scaled());
      return;
    case TypeKind::kReal:
      PutDouble(v.real_value());
      return;
    case TypeKind::kString:
      PutString(v.string_value());
      return;
    case TypeKind::kDate:
      PutI64(v.date_days());
      return;
  }
}

void Encoder::PutTuple(const Tuple& t) {
  PutU32(static_cast<uint32_t>(t.arity()));
  for (const Value& v : t.values()) PutValue(v);
}

void Encoder::PutSchema(const RelationSchema& s) {
  PutString(s.name());
  PutU32(static_cast<uint32_t>(s.arity()));
  for (const Attribute& a : s.attributes()) {
    PutString(a.name);
    PutU8(static_cast<uint8_t>(a.type.kind()));
  }
}

void Encoder::PutRelation(const Relation& r) {
  PutSchema(r.schema());
  PutU64(r.distinct_size());
  for (const auto& [tuple, count] : r.SortedEntries()) {
    PutTuple(tuple);
    PutU64(count);
  }
}

void Encoder::PutStatistics(const stats::TableStatistics& s) {
  PutU64(s.row_count);
  PutU64(s.distinct_count);
  PutU64(s.collected_at);
  PutU32(static_cast<uint32_t>(s.columns.size()));
  for (const stats::ColumnStatistics& c : s.columns) {
    PutU64(c.distinct);
    PutDouble(c.null_fraction);
    PutU8(c.has_range ? 1 : 0);
    PutDouble(c.min);
    PutDouble(c.max);
    const auto& buckets = c.histogram.buckets();
    PutU32(static_cast<uint32_t>(buckets.size()));
    for (const stats::HistogramBucket& b : buckets) {
      PutDouble(b.lo);
      PutDouble(b.hi);
      PutU64(b.rows);
      PutU64(b.distinct);
    }
  }
}

Status Decoder::Need(size_t n) const {
  if (pos_ + n > data_.size()) {
    return Status::Corruption("serialized data truncated at offset " +
                              std::to_string(pos_));
  }
  return Status::OK();
}

Result<uint8_t> Decoder::GetU8() {
  MRA_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> Decoder::GetU32() {
  MRA_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> Decoder::GetU64() {
  MRA_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> Decoder::GetI64() {
  MRA_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> Decoder::GetDouble() {
  MRA_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> Decoder::GetString() {
  MRA_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (len > kMaxStringLen) {
    return Status::Corruption("implausible string length");
  }
  MRA_RETURN_IF_ERROR(Need(len));
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

Result<Value> Decoder::GetValue() {
  MRA_ASSIGN_OR_RETURN(uint8_t kind, GetU8());
  switch (static_cast<TypeKind>(kind)) {
    case TypeKind::kBool: {
      MRA_ASSIGN_OR_RETURN(uint8_t b, GetU8());
      return Value::Bool(b != 0);
    }
    case TypeKind::kInt: {
      MRA_ASSIGN_OR_RETURN(int64_t v, GetI64());
      return Value::Int(v);
    }
    case TypeKind::kDecimal: {
      MRA_ASSIGN_OR_RETURN(int64_t v, GetI64());
      return Value::DecimalScaled(v);
    }
    case TypeKind::kReal: {
      MRA_ASSIGN_OR_RETURN(double v, GetDouble());
      return Value::Real(v);
    }
    case TypeKind::kString: {
      MRA_ASSIGN_OR_RETURN(std::string v, GetString());
      return Value::Str(std::move(v));
    }
    case TypeKind::kDate: {
      MRA_ASSIGN_OR_RETURN(int64_t v, GetI64());
      return Value::Date(static_cast<int32_t>(v));
    }
  }
  return Status::Corruption("unknown value kind tag " + std::to_string(kind));
}

Result<Tuple> Decoder::GetTuple() {
  MRA_ASSIGN_OR_RETURN(uint32_t arity, GetU32());
  std::vector<Value> values;
  values.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    MRA_ASSIGN_OR_RETURN(Value v, GetValue());
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

Result<RelationSchema> Decoder::GetSchema() {
  MRA_ASSIGN_OR_RETURN(std::string name, GetString());
  MRA_ASSIGN_OR_RETURN(uint32_t arity, GetU32());
  std::vector<Attribute> attrs;
  attrs.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    MRA_ASSIGN_OR_RETURN(std::string attr_name, GetString());
    MRA_ASSIGN_OR_RETURN(uint8_t kind, GetU8());
    if (kind > static_cast<uint8_t>(TypeKind::kDate)) {
      return Status::Corruption("unknown type kind tag");
    }
    attrs.push_back({std::move(attr_name), Type(static_cast<TypeKind>(kind))});
  }
  return RelationSchema(std::move(name), std::move(attrs));
}

Result<Relation> Decoder::GetRelation() {
  MRA_ASSIGN_OR_RETURN(RelationSchema schema, GetSchema());
  MRA_ASSIGN_OR_RETURN(uint64_t distinct, GetU64());
  Relation out(std::move(schema));
  for (uint64_t i = 0; i < distinct; ++i) {
    MRA_ASSIGN_OR_RETURN(Tuple t, GetTuple());
    MRA_ASSIGN_OR_RETURN(uint64_t count, GetU64());
    if (count == 0) return Status::Corruption("zero multiplicity on disk");
    MRA_RETURN_IF_ERROR(out.Insert(std::move(t), count));
  }
  return out;
}

Result<stats::TableStatistics> Decoder::GetStatistics() {
  stats::TableStatistics out;
  MRA_ASSIGN_OR_RETURN(out.row_count, GetU64());
  MRA_ASSIGN_OR_RETURN(out.distinct_count, GetU64());
  MRA_ASSIGN_OR_RETURN(out.collected_at, GetU64());
  MRA_ASSIGN_OR_RETURN(uint32_t columns, GetU32());
  out.columns.resize(columns);
  for (uint32_t i = 0; i < columns; ++i) {
    stats::ColumnStatistics& c = out.columns[i];
    MRA_ASSIGN_OR_RETURN(c.distinct, GetU64());
    MRA_ASSIGN_OR_RETURN(c.null_fraction, GetDouble());
    MRA_ASSIGN_OR_RETURN(uint8_t has_range, GetU8());
    c.has_range = has_range != 0;
    MRA_ASSIGN_OR_RETURN(c.min, GetDouble());
    MRA_ASSIGN_OR_RETURN(c.max, GetDouble());
    MRA_ASSIGN_OR_RETURN(uint32_t buckets_n, GetU32());
    std::vector<stats::HistogramBucket> buckets(buckets_n);
    for (stats::HistogramBucket& b : buckets) {
      MRA_ASSIGN_OR_RETURN(b.lo, GetDouble());
      MRA_ASSIGN_OR_RETURN(b.hi, GetDouble());
      MRA_ASSIGN_OR_RETURN(b.rows, GetU64());
      MRA_ASSIGN_OR_RETURN(b.distinct, GetU64());
    }
    c.histogram = stats::EquiDepthHistogram(std::move(buckets));
  }
  return out;
}

uint32_t Crc32(std::string_view data) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xffffffffu;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::string EncodeCatalog(const Catalog& catalog) {
  Encoder enc;
  enc.PutU64(catalog.logical_time());
  std::vector<std::string> names = catalog.RelationNames();
  enc.PutU32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    const Relation* rel = catalog.GetRelation(name).value();
    enc.PutRelation(*rel);
  }
  // Trailing statistics section.  Pre-statistics images simply end here,
  // which DecodeCatalog treats as "no snapshots".
  enc.PutU32(static_cast<uint32_t>(catalog.statistics().size()));
  for (const auto& [name, stats] : catalog.statistics()) {
    enc.PutString(name);
    enc.PutStatistics(stats);
  }
  return enc.TakeBuffer();
}

Result<Catalog> DecodeCatalog(std::string_view data) {
  Decoder dec(data);
  Catalog catalog;
  MRA_ASSIGN_OR_RETURN(uint64_t time, dec.GetU64());
  catalog.set_logical_time(time);
  MRA_ASSIGN_OR_RETURN(uint32_t n, dec.GetU32());
  for (uint32_t i = 0; i < n; ++i) {
    MRA_ASSIGN_OR_RETURN(Relation rel, dec.GetRelation());
    RelationSchema schema = rel.schema();
    MRA_RETURN_IF_ERROR(catalog.CreateRelation(schema));
    MRA_RETURN_IF_ERROR(catalog.SetRelation(schema.name(), std::move(rel)));
  }
  if (!dec.AtEnd()) {
    MRA_ASSIGN_OR_RETURN(uint32_t stats_n, dec.GetU32());
    for (uint32_t i = 0; i < stats_n; ++i) {
      MRA_ASSIGN_OR_RETURN(std::string name, dec.GetString());
      MRA_ASSIGN_OR_RETURN(stats::TableStatistics stats, dec.GetStatistics());
      MRA_RETURN_IF_ERROR(catalog.SetStatistics(name, std::move(stats)));
    }
  }
  if (!dec.AtEnd()) {
    return Status::Corruption("trailing bytes after catalog image");
  }
  return catalog;
}

}  // namespace storage
}  // namespace mra
