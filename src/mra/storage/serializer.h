// Binary serialization of values, tuples, schemas, relations and whole
// database states.  Fixed-width little-endian encoding with length-prefixed
// strings; used by the write-ahead log and checkpoint files.

#ifndef MRA_STORAGE_SERIALIZER_H_
#define MRA_STORAGE_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "mra/common/result.h"
#include "mra/core/relation.h"
#include "mra/stats/table_statistics.h"

namespace mra {

class Catalog;

namespace storage {

/// Appends encoded data to an owned byte buffer.
class Encoder {
 public:
  void PutU8(uint8_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v);
  void PutDouble(double v);
  void PutString(std::string_view v);

  void PutValue(const Value& v);
  void PutTuple(const Tuple& t);
  void PutSchema(const RelationSchema& s);
  /// Schema + (tuple, multiplicity) pairs, deterministic order.
  void PutRelation(const Relation& r);
  /// An ANALYZE snapshot (cardinalities, per-column sketches, histograms).
  void PutStatistics(const stats::TableStatistics& s);

  const std::string& buffer() const { return buffer_; }
  std::string TakeBuffer() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Reads encoded data from a borrowed byte range.  All getters return
/// Corruption on underflow or malformed content.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::string> GetString();

  Result<Value> GetValue();
  Result<Tuple> GetTuple();
  Result<RelationSchema> GetSchema();
  Result<Relation> GetRelation();
  Result<stats::TableStatistics> GetStatistics();

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

 private:
  Status Need(size_t n) const;

  std::string_view data_;
  size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial) of `data` — frames WAL records.
uint32_t Crc32(std::string_view data);

/// Serializes a full database state (all relations + logical time),
/// followed by the stored ANALYZE statistics snapshots.
std::string EncodeCatalog(const Catalog& catalog);
/// Inverse of EncodeCatalog.  Images written before the statistics
/// subsystem existed lack the trailing statistics section and decode to a
/// catalog with no snapshots.
Result<Catalog> DecodeCatalog(std::string_view data);

}  // namespace storage
}  // namespace mra

#endif  // MRA_STORAGE_SERIALIZER_H_
