// Write-ahead log: an append-only file of CRC-framed records providing the
// durability half of the paper's transaction model (§4.3).  Each committed
// transaction appends one record before its effects are considered durable;
// recovery replays intact records and tolerates a torn tail (a partially
// written final record), reporting corruption anywhere else.
//
// Frame layout: [u32 magic][u32 payload_len][u32 crc32(payload)][payload].

#ifndef MRA_STORAGE_WAL_H_
#define MRA_STORAGE_WAL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "mra/common/result.h"

namespace mra {
namespace storage {

/// Appends framed records to a log file.
///
/// Failpoints (docs/RECOVERY.md): `wal.append` — an `error` action fails
/// the append before any byte is written, `torn(N)` persists only the
/// first N bytes of the frame and then fails (a simulated crash
/// mid-write); `wal.sync` fails or aborts inside Sync().
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (creating if needed) `path` for appending.
  static Result<WalWriter> Open(const std::string& path);

  /// Appends one framed record and flushes it to the OS.  When `sync` is
  /// true the record is also fsync'ed to stable storage before returning.
  Status Append(std::string_view payload, bool sync);

  /// fsync the file.
  Status Sync();

  void Close();
  bool is_open() const { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
};

/// How ReadWal treats corruption that is not a clean torn tail.
enum class Salvage {
  /// Mid-log corruption fails the read with Corruption (default).
  kNone,
  /// Mid-log corruption keeps the intact prefix: the result carries the
  /// records up to the corrupt frame, `salvaged` set, and the number of
  /// structurally identifiable frames that were discarded.  Reported via
  /// the `wal.salvaged_*` metrics.
  kPrefix,
};

/// Outcome of reading a log.
struct WalReadResult {
  std::vector<std::string> records;
  /// True when the file ended with a partially written record, which
  /// recovery discards (the transaction never acknowledged its commit).
  bool torn_tail = false;
  /// True when Salvage::kPrefix dropped a corrupt suffix mid-log.
  bool salvaged = false;
  /// Byte offset one past the last intact record — the length the file
  /// must be truncated to before any new record is appended, so a fresh
  /// commit is never written after a partial or corrupt frame.
  uint64_t valid_bytes = 0;
  /// Salvage only: frames after the corruption point that still parse
  /// structurally (magic + plausible length), i.e. records lost to the
  /// corrupt stretch, plus one for the corrupt frame itself.
  uint64_t discarded_records = 0;
};

/// Reads all intact records of the log at `path`.  A missing file yields an
/// empty result.  A malformed frame that is not a clean torn tail (e.g. a
/// CRC mismatch followed by further data) returns Corruption — unless
/// `salvage` is kPrefix, which recovers the intact prefix instead.
Result<WalReadResult> ReadWal(const std::string& path,
                              Salvage salvage = Salvage::kNone);

/// Truncates the log to empty (after a checkpoint).
Status TruncateWal(const std::string& path);

/// Truncates the log to its intact prefix (`valid_bytes` from a read that
/// reported a torn tail or salvaged corruption).
Status TruncateWalToOffset(const std::string& path, uint64_t valid_bytes);

}  // namespace storage
}  // namespace mra

#endif  // MRA_STORAGE_WAL_H_
