// Write-ahead log: an append-only file of CRC-framed records providing the
// durability half of the paper's transaction model (§4.3).  Each committed
// transaction appends one record before its effects are considered durable;
// recovery replays intact records and tolerates a torn tail (a partially
// written final record), reporting corruption anywhere else.
//
// Frame layout: [u32 magic][u32 payload_len][u32 crc32(payload)][payload].

#ifndef MRA_STORAGE_WAL_H_
#define MRA_STORAGE_WAL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "mra/common/result.h"

namespace mra {
namespace storage {

/// Appends framed records to a log file.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (creating if needed) `path` for appending.
  static Result<WalWriter> Open(const std::string& path);

  /// Appends one framed record and flushes it to the OS.  When `sync` is
  /// true the record is also fsync'ed to stable storage before returning.
  Status Append(std::string_view payload, bool sync);

  /// fsync the file.
  Status Sync();

  void Close();
  bool is_open() const { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
};

/// Outcome of reading a log.
struct WalReadResult {
  std::vector<std::string> records;
  /// True when the file ended with a partially written record, which
  /// recovery discards (the transaction never acknowledged its commit).
  bool torn_tail = false;
};

/// Reads all intact records of the log at `path`.  A missing file yields an
/// empty result.  A malformed frame that is not a clean torn tail (e.g. a
/// CRC mismatch followed by further data) returns Corruption.
Result<WalReadResult> ReadWal(const std::string& path);

/// Truncates the log to empty (after a checkpoint).
Status TruncateWal(const std::string& path);

}  // namespace storage
}  // namespace mra

#endif  // MRA_STORAGE_WAL_H_
