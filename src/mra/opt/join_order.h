// Cost-based join-order selection (optimizer v2).
//
// Theorem 3.3 carries ⋈/× associativity and commutativity into the bag
// algebra, so any bracketing of a join region returns the same multiset —
// the enumerator's licence to reorder.  Each maximal ⋈/× region is
// flattened into its leaf subtrees and the conjuncts of its join
// conditions; equality conjuncts linking two leaves form the equi-join
// graph.  A dynamic program over leaf subsets (Selinger-style, avoiding
// cross products while the graph is connected) picks the cheapest
// bracketing under a hash-join cost model; above kDpLeafLimit leaves a
// greedy heuristic takes over.  The reordered tree reproduces the original
// column order through a final restore projection, so the region's output
// is PlanEquals-indistinguishable in schema and, by Theorem 3.3, equal as
// a multiset — property-tested differentially against the definitional
// evaluator.

#ifndef MRA_OPT_JOIN_ORDER_H_
#define MRA_OPT_JOIN_ORDER_H_

#include <string>
#include <vector>

#include "mra/algebra/evaluator.h"
#include "mra/algebra/plan.h"
#include "mra/opt/stats.h"

namespace mra {
namespace opt {

/// Above this many region leaves, subset DP (3^n splits) yields to greedy.
inline constexpr size_t kDpLeafLimit = 10;

/// Hash-join cost weights: building a table costs about twice probing it
/// (allocation + insertion vs. lookup; calibrated against the E16 kernel
/// measurements), and every output row costs its materialisation.
inline constexpr double kBuildCostPerRow = 2.0;
inline constexpr double kProbeCostPerRow = 1.0;
inline constexpr double kOutputCostPerRow = 1.0;

/// Reorders every maximal ⋈/× region of `plan` whose modeled cost beats
/// the front-end order; regions without statistics (any leaf estimating
/// kNoEstimate) are left untouched.  Appends one human-readable entry per
/// reordered region ("t ⋈ r ⋈ s") to `trail` when non-null.
Result<PlanPtr> ReorderJoins(const PlanPtr& plan,
                             const RelationProvider& provider,
                             StatsCache* cache,
                             std::vector<std::string>* trail);

}  // namespace opt
}  // namespace mra

#endif  // MRA_OPT_JOIN_ORDER_H_
