// Rewrite rules.  Every rule realises an expression equivalence that holds
// in the multi-set algebra — the paper's central optimization claim (§3.3):
// the classical set-algebra equivalences carry over to bags.
//
//   Theorem 3.1   σ_φ(E1 × E2) = E1 ⋈_φ E2          (join introduction)
//                 E1 ∩ E2 = E1 − (E1 − E2)           (tested, not a rewrite)
//   Theorem 3.2   σ_p(E1 ⊎ E2) = σ_pE1 ⊎ σ_pE2      (selection pushdown)
//                 π_a(E1 ⊎ E2) = π_aE1 ⊎ π_aE2      (column pruning)
//   Theorem 3.3   associativity of ×, ⋈, ⊎, ∩        (join commute/ordering)
//   §3.3 note     δ(E1 ⊎ E2) = δ(δE1 ⊎ δE2)          (optional pre-dedup)
//
// plus bag-valid relatives (σ through −, ∩, δ and π; δδ = δ;
// δ(E1 × E2) = δE1 × δE2) and the early-projection transformation of
// Example 3.2.  All rules are verified against the definitional evaluator
// by property tests.
//
// Each Try* function returns the rewritten node, or nullptr when the rule
// does not apply.  Rules are *local*: they inspect one node (and its
// children's shapes) and never recurse — the optimizer driver handles
// traversal and fixpoints.

#ifndef MRA_OPT_RULES_H_
#define MRA_OPT_RULES_H_

#include "mra/algebra/evaluator.h"
#include "mra/algebra/plan.h"
#include "mra/opt/stats.h"

namespace mra {
namespace opt {

/// Rebuilds `plan` with new children; returns `plan` itself when every
/// child is unchanged.  Shared by the rule drivers and the join-order
/// enumerator.
Result<PlanPtr> WithChildren(const PlanPtr& plan,
                             std::vector<PlanPtr> children);

/// σ_p(σ_q E) → σ_{q ∧ p} E — the predicate merge rule.
Result<PlanPtr> TryMergeSelects(const PlanPtr& plan);

/// σ_{p1∧…∧pk} E → σ_p1(…(σ_pk E)), k ≥ 2 — the predicate split-up rule
/// (after Hyrise's PredicateSplitUpRule): a conjunction broken into a
/// chain lets each conjunct sink independently (Theorem 3.2 holds per
/// conjunct; a bag's tuple satisfies p1∧…∧pk iff it survives the chain,
/// multiplicities untouched).  Runs in its own early pass — TryMergeSelects
/// is its exact inverse and the two would loop in one fixpoint.
Result<PlanPtr> TrySplitSelect(const PlanPtr& plan);

/// Pushes a selection through ⊎ (Theorem 3.2), − , ∩ , δ and π (bag-valid
/// relatives), and into/through × and ⋈ by splitting conjuncts per side
/// (subsumes Theorem 3.1's join introduction: a σ over × with cross-side
/// conjuncts becomes a ⋈).  Applies to bare ⋈ nodes too, pushing one-sided
/// conjuncts of the join condition below the join.
Result<PlanPtr> TrySelectPushdown(const PlanPtr& plan);

/// π_a(π_b E) → π_{a∘b} E (substitutes the inner expressions into the
/// outer ones).  Applies when the inner expressions referenced by the
/// outer projection are cheap (attribute references or literals), so work
/// is never duplicated.
Result<PlanPtr> TryMergeProjects(const PlanPtr& plan);

/// δδE → δE;  δ(Γ…E) → Γ…E (group-by output is duplicate-free);
/// δ(E1 × E2) → δE1 × δE2;  δ(E1 ⋈_φ E2) → δE1 ⋈_φ δE2.
Result<PlanPtr> TryUniqueSimplify(const PlanPtr& plan);

/// δ(E1 ⊎ E2) → δ(δE1 ⊎ δE2) — the equivalence the paper states when
/// noting that δ does NOT distribute over ⊎.  Profitable only for very
/// duplicate-heavy inputs, so it is not part of the default pass; bench E9
/// measures both sides.
Result<PlanPtr> TryUniquePreDedupUnion(const PlanPtr& plan);

/// Folds constants inside σ/π/⋈ payloads; σ_true E → E;
/// σ_false E → ∅ (a ConstRel of the right schema); ⋈_true → ×;
/// drops identity projections.
Result<PlanPtr> TryConstantSimplify(const PlanPtr& plan);

/// Commutes ⋈/× so the smaller (estimated) input sits on the right — the
/// hash-join build side (Theorem 3.3 makes orderings interchangeable;
/// statistics pick the cheap one).  `cache` (optional) supplies live
/// column statistics for sharper estimates.
Result<PlanPtr> TryJoinCommute(const PlanPtr& plan,
                               const RelationProvider& provider,
                               StatsCache* cache = nullptr);

/// The early-projection pass of Example 3.2: pushes column requirements
/// top-down and inserts narrow projections beneath joins, products and set
/// operations wherever that is semantics-preserving in the bag algebra
/// (through ⊎, ×, ⋈, σ, π, Γ; *not* through −, ∩ or δ, where π does not
/// distribute).  Returns a plan producing the same relation (schema column
/// order preserved at the root).
Result<PlanPtr> PruneColumns(const PlanPtr& root);

}  // namespace opt
}  // namespace mra

#endif  // MRA_OPT_RULES_H_
