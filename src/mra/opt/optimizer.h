// Rule-driven plan optimizer.
//
// The paper's §3.3 argues that the standard algebra's equivalences — the
// raw material of query optimization — carry over to the multi-set algebra.
// This optimizer is that argument made executable: every pass applies only
// equivalences proved (or noted) in the paper or their bag-valid relatives
// documented in rules.h, and the whole pipeline is property-tested to
// preserve plan semantics exactly.

#ifndef MRA_OPT_OPTIMIZER_H_
#define MRA_OPT_OPTIMIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "mra/algebra/evaluator.h"
#include "mra/algebra/plan.h"
#include "mra/opt/rules.h"

namespace mra {
namespace opt {

/// Pass toggles, mainly for ablation benchmarks.
struct OptimizerOptions {
  bool constant_folding = true;
  /// Predicate split-up (conjunctions into chains, for per-conjunct
  /// pushdown; merged back by TryMergeSelects at the fixpoint).
  bool split_select = true;
  /// Select pushdown + join introduction (Theorems 3.1, 3.2).
  bool select_pushdown = true;
  /// Early projection / column pruning (Example 3.2, Theorem 3.2).
  bool column_pruning = true;
  /// δ simplifications (δδ, δΓ, δ×).
  bool unique_simplify = true;
  /// Cost-based join-order enumeration over ⋈/× regions (Theorem 3.3;
  /// DP up to kDpLeafLimit leaves, greedy beyond).
  bool join_reorder = true;
  /// Cost-based ⋈/× commutation (build-side choice, Theorem 3.3).
  bool join_commute = true;
  /// δ(E1⊎E2) → δ(δE1⊎δE2); off by default (pays only for very
  /// duplicate-heavy inputs — bench E9).
  bool pre_dedup_union = false;

  /// Safety bound on rewrite iterations per pass.
  int max_iterations = 16;
};

/// The optimizer's decision trail: one entry per distinct rule that fired
/// ("rule: merge_selects") and per adopted join reordering
/// ("reordered: s ⋈ t ⋈ r").  EXPLAIN renders each entry bracketed with
/// the shared annotation helper.
struct OptimizerReport {
  std::vector<std::string> entries;

  /// Appends "kind: detail" unless an identical entry already exists.
  void Add(std::string_view kind, std::string_view detail);
};

class Optimizer {
 public:
  /// `provider` supplies cardinalities for cost-based choices; it is only
  /// read during Optimize.
  Optimizer(const RelationProvider* provider, OptimizerOptions options = {})
      : provider_(provider), options_(options) {
    MRA_CHECK(provider != nullptr);
  }

  /// Rewrites `plan` into an equivalent, typically cheaper plan.  With a
  /// non-null `report`, records which rules fired and which join regions
  /// were reordered.
  Result<PlanPtr> Optimize(PlanPtr plan,
                           OptimizerReport* report = nullptr) const;

  const OptimizerOptions& options() const { return options_; }

 private:
  const RelationProvider* provider_;
  OptimizerOptions options_;
};

}  // namespace opt
}  // namespace mra

#endif  // MRA_OPT_OPTIMIZER_H_
