#include "mra/opt/optimizer.h"

#include "mra/obs/metrics.h"

namespace mra {
namespace opt {

namespace {

using RuleFn = Result<PlanPtr> (*)(const PlanPtr&);

/// A rewrite rule with the name its firing counter is registered under
/// (`opt.rule.<name>` in the global metrics registry).
struct NamedRule {
  const char* name;
  RuleFn fn;
};

void CountRuleFiring(const char* rule_name) {
  obs::MetricsRegistry::Global()
      .GetCounter(std::string("opt.rule.") + rule_name)
      ->Inc();
}

// Rebuilds `plan` with new children (no-op when all children are unchanged).
Result<PlanPtr> WithChildren(const PlanPtr& plan,
                             std::vector<PlanPtr> children) {
  bool same = children.size() == plan->num_children();
  for (size_t i = 0; same && i < children.size(); ++i) {
    same = children[i] == plan->child(i);
  }
  if (same) return plan;
  switch (plan->kind()) {
    case PlanKind::kScan:
    case PlanKind::kConstRel:
      return plan;
    case PlanKind::kUnion:
      return Plan::Union(std::move(children[0]), std::move(children[1]));
    case PlanKind::kDifference:
      return Plan::Difference(std::move(children[0]), std::move(children[1]));
    case PlanKind::kIntersect:
      return Plan::Intersect(std::move(children[0]), std::move(children[1]));
    case PlanKind::kProduct:
      return Plan::Product(std::move(children[0]), std::move(children[1]));
    case PlanKind::kJoin:
      return Plan::Join(plan->condition(), std::move(children[0]),
                        std::move(children[1]));
    case PlanKind::kSelect:
      return Plan::Select(plan->condition(), std::move(children[0]));
    case PlanKind::kProject: {
      std::vector<std::string> names;
      for (const Attribute& a : plan->schema().attributes()) {
        names.push_back(a.name);
      }
      return Plan::Project(plan->projections(), std::move(children[0]),
                           std::move(names));
    }
    case PlanKind::kUnique:
      return Plan::Unique(std::move(children[0]));
    case PlanKind::kClosure:
      return Plan::Closure(std::move(children[0]));
    case PlanKind::kGroupBy: {
      std::vector<AggSpec> aggs = plan->aggregates();
      for (size_t i = 0; i < aggs.size(); ++i) {
        aggs[i].output_name =
            plan->schema().attribute(plan->group_keys().size() + i).name;
      }
      return Plan::GroupBy(plan->group_keys(), std::move(aggs),
                           std::move(children[0]));
    }
  }
  return Status::Internal("bad plan kind");
}

// One bottom-up sweep: rewrite children first, then apply the rule set at
// this node repeatedly until no rule fires.
Result<PlanPtr> Sweep(const PlanPtr& plan, const std::vector<NamedRule>& rules,
                      bool* changed, int max_iterations) {
  std::vector<PlanPtr> children;
  children.reserve(plan->num_children());
  for (const PlanPtr& child : plan->children()) {
    MRA_ASSIGN_OR_RETURN(PlanPtr c, Sweep(child, rules, changed,
                                          max_iterations));
    children.push_back(std::move(c));
  }
  MRA_ASSIGN_OR_RETURN(PlanPtr current, WithChildren(plan, std::move(children)));
  for (int iter = 0; iter < max_iterations; ++iter) {
    bool fired = false;
    for (const NamedRule& rule : rules) {
      MRA_ASSIGN_OR_RETURN(PlanPtr next, rule.fn(current));
      if (next != nullptr && next != current && !PlanEquals(next, current)) {
        CountRuleFiring(rule.name);
        current = std::move(next);
        fired = true;
        *changed = true;
        // The rewritten node may expose new opportunities below it.
        std::vector<PlanPtr> sub;
        sub.reserve(current->num_children());
        for (const PlanPtr& child : current->children()) {
          MRA_ASSIGN_OR_RETURN(
              PlanPtr c, Sweep(child, rules, changed, max_iterations));
          sub.push_back(std::move(c));
        }
        MRA_ASSIGN_OR_RETURN(current, WithChildren(current, std::move(sub)));
        break;
      }
    }
    if (!fired) break;
  }
  return current;
}

}  // namespace

Result<PlanPtr> Optimizer::Optimize(PlanPtr plan) const {
  // Pass 1: logical simplification + pushdown to a fixpoint.
  std::vector<NamedRule> logical;
  if (options_.constant_folding) {
    logical.push_back({"constant_simplify", &TryConstantSimplify});
  }
  logical.push_back({"merge_selects", &TryMergeSelects});
  if (options_.select_pushdown) {
    logical.push_back({"select_pushdown", &TrySelectPushdown});
  }
  logical.push_back({"merge_projects", &TryMergeProjects});
  if (options_.unique_simplify) {
    logical.push_back({"unique_simplify", &TryUniqueSimplify});
  }
  if (options_.pre_dedup_union) {
    logical.push_back({"pre_dedup_union", &TryUniquePreDedupUnion});
  }

  for (int round = 0; round < options_.max_iterations; ++round) {
    bool changed = false;
    MRA_ASSIGN_OR_RETURN(
        plan, Sweep(plan, logical, &changed, options_.max_iterations));
    if (!changed) break;
  }

  // Pass 2: early projection (Example 3.2).
  if (options_.column_pruning) {
    PlanPtr before = plan;
    MRA_ASSIGN_OR_RETURN(plan, PruneColumns(plan));
    if (plan != before && !PlanEquals(plan, before)) {
      CountRuleFiring("prune_columns");
    }
    // Pruning inserts projections; clean up identities and merge chains.
    bool changed = false;
    MRA_ASSIGN_OR_RETURN(
        plan, Sweep(plan, logical, &changed, options_.max_iterations));
  }

  // Pass 3: cost-based build-side choice (Theorem 3.3 legitimises
  // reordering; statistics choose).
  if (options_.join_commute) {
    // TryJoinCommute needs the provider, so it cannot be a plain RuleFn;
    // run a dedicated bottom-up sweep.
    StatsCache stats(provider_);
    struct Recurse {
      const RelationProvider& provider;
      StatsCache* stats;
      Result<PlanPtr> operator()(const PlanPtr& node) const {
        std::vector<PlanPtr> children;
        children.reserve(node->num_children());
        for (const PlanPtr& child : node->children()) {
          MRA_ASSIGN_OR_RETURN(PlanPtr c, (*this)(child));
          children.push_back(std::move(c));
        }
        MRA_ASSIGN_OR_RETURN(PlanPtr current,
                             WithChildren(node, std::move(children)));
        MRA_ASSIGN_OR_RETURN(PlanPtr next,
                             TryJoinCommute(current, provider, stats));
        if (next != nullptr) CountRuleFiring("join_commute");
        return next != nullptr ? next : current;
      }
    };
    MRA_ASSIGN_OR_RETURN(plan, (Recurse{*provider_, &stats}(plan)));
    // Commutation can introduce restore-projections; merge them.
    bool changed = false;
    MRA_ASSIGN_OR_RETURN(
        plan, Sweep(plan, logical, &changed, options_.max_iterations));
  }

  return plan;
}

}  // namespace opt
}  // namespace mra
