#include "mra/opt/optimizer.h"

#include "mra/common/annotation.h"
#include "mra/obs/metrics.h"
#include "mra/opt/join_order.h"

namespace mra {
namespace opt {

namespace {

using RuleFn = Result<PlanPtr> (*)(const PlanPtr&);

/// A rewrite rule with the name its firing counter is registered under
/// (`opt.rule.<name>` in the global metrics registry).
struct NamedRule {
  const char* name;
  RuleFn fn;
};

void CountRuleFiring(const char* rule_name,
                     OptimizerReport* report = nullptr) {
  obs::MetricsRegistry::Global()
      .GetCounter(std::string("opt.rule.") + rule_name)
      ->Inc();
  if (report != nullptr) report->Add("rule", rule_name);
}

// One bottom-up sweep: rewrite children first, then apply the rule set at
// this node repeatedly until no rule fires.
Result<PlanPtr> Sweep(const PlanPtr& plan, const std::vector<NamedRule>& rules,
                      bool* changed, int max_iterations,
                      OptimizerReport* report) {
  std::vector<PlanPtr> children;
  children.reserve(plan->num_children());
  for (const PlanPtr& child : plan->children()) {
    MRA_ASSIGN_OR_RETURN(PlanPtr c, Sweep(child, rules, changed,
                                          max_iterations, report));
    children.push_back(std::move(c));
  }
  MRA_ASSIGN_OR_RETURN(PlanPtr current, WithChildren(plan, std::move(children)));
  for (int iter = 0; iter < max_iterations; ++iter) {
    bool fired = false;
    for (const NamedRule& rule : rules) {
      MRA_ASSIGN_OR_RETURN(PlanPtr next, rule.fn(current));
      if (next != nullptr && next != current && !PlanEquals(next, current)) {
        CountRuleFiring(rule.name, report);
        current = std::move(next);
        fired = true;
        *changed = true;
        // The rewritten node may expose new opportunities below it.
        std::vector<PlanPtr> sub;
        sub.reserve(current->num_children());
        for (const PlanPtr& child : current->children()) {
          MRA_ASSIGN_OR_RETURN(
              PlanPtr c, Sweep(child, rules, changed, max_iterations, report));
          sub.push_back(std::move(c));
        }
        MRA_ASSIGN_OR_RETURN(current, WithChildren(current, std::move(sub)));
        break;
      }
    }
    if (!fired) break;
  }
  return current;
}

}  // namespace

void OptimizerReport::Add(std::string_view kind, std::string_view detail) {
  std::string entry = AnnotationText(kind, detail);
  for (const std::string& existing : entries) {
    if (existing == entry) return;
  }
  entries.push_back(std::move(entry));
}

Result<PlanPtr> Optimizer::Optimize(PlanPtr plan,
                                    OptimizerReport* report) const {
  // Pass 0: predicate split-up (its inverse, merge_selects, runs in the
  // pass-1 fixpoint; keeping them apart avoids a rewrite loop).
  if (options_.split_select) {
    std::vector<NamedRule> split{{"split_select", &TrySplitSelect}};
    bool changed = false;
    MRA_ASSIGN_OR_RETURN(
        plan, Sweep(plan, split, &changed, options_.max_iterations, report));
  }

  // Pass 1: logical simplification + pushdown to a fixpoint.
  std::vector<NamedRule> logical;
  if (options_.constant_folding) {
    logical.push_back({"constant_simplify", &TryConstantSimplify});
  }
  logical.push_back({"merge_selects", &TryMergeSelects});
  if (options_.select_pushdown) {
    logical.push_back({"select_pushdown", &TrySelectPushdown});
  }
  logical.push_back({"merge_projects", &TryMergeProjects});
  if (options_.unique_simplify) {
    logical.push_back({"unique_simplify", &TryUniqueSimplify});
  }
  if (options_.pre_dedup_union) {
    logical.push_back({"pre_dedup_union", &TryUniquePreDedupUnion});
  }

  for (int round = 0; round < options_.max_iterations; ++round) {
    bool changed = false;
    MRA_ASSIGN_OR_RETURN(
        plan, Sweep(plan, logical, &changed, options_.max_iterations, report));
    if (!changed) break;
  }

  // Pass 2: early projection (Example 3.2).
  if (options_.column_pruning) {
    PlanPtr before = plan;
    MRA_ASSIGN_OR_RETURN(plan, PruneColumns(plan));
    if (plan != before && !PlanEquals(plan, before)) {
      CountRuleFiring("prune_columns", report);
    }
    // Pruning inserts projections; clean up identities and merge chains.
    bool changed = false;
    MRA_ASSIGN_OR_RETURN(
        plan, Sweep(plan, logical, &changed, options_.max_iterations, report));
  }

  // Pass 3: cost-based join ordering over ⋈/× regions (Theorem 3.3).
  if (options_.join_reorder) {
    StatsCache stats(provider_);
    std::vector<std::string> trail;
    MRA_ASSIGN_OR_RETURN(plan,
                         ReorderJoins(plan, *provider_, &stats, &trail));
    for (const std::string& order : trail) {
      CountRuleFiring("join_reorder");
      if (report != nullptr) report->Add("reordered", order);
    }
    if (!trail.empty()) {
      // Reordering introduces restore-projections; clean them up.
      bool changed = false;
      MRA_ASSIGN_OR_RETURN(
          plan,
          Sweep(plan, logical, &changed, options_.max_iterations, report));
    }
  }

  // Pass 4: cost-based build-side choice (Theorem 3.3 legitimises
  // commutation; statistics choose).
  if (options_.join_commute) {
    // TryJoinCommute needs the provider, so it cannot be a plain RuleFn;
    // run a dedicated bottom-up sweep.
    StatsCache stats(provider_);
    struct Recurse {
      const RelationProvider& provider;
      StatsCache* stats;
      OptimizerReport* report;
      Result<PlanPtr> operator()(const PlanPtr& node) const {
        std::vector<PlanPtr> children;
        children.reserve(node->num_children());
        for (const PlanPtr& child : node->children()) {
          MRA_ASSIGN_OR_RETURN(PlanPtr c, (*this)(child));
          children.push_back(std::move(c));
        }
        MRA_ASSIGN_OR_RETURN(PlanPtr current,
                             WithChildren(node, std::move(children)));
        MRA_ASSIGN_OR_RETURN(PlanPtr next,
                             TryJoinCommute(current, provider, stats));
        if (next != nullptr) CountRuleFiring("join_commute", report);
        return next != nullptr ? next : current;
      }
    };
    MRA_ASSIGN_OR_RETURN(plan, (Recurse{*provider_, &stats, report}(plan)));
    // Commutation can introduce restore-projections; merge them.
    bool changed = false;
    MRA_ASSIGN_OR_RETURN(
        plan, Sweep(plan, logical, &changed, options_.max_iterations, report));
  }

  return plan;
}

}  // namespace opt
}  // namespace mra
