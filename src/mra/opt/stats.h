// Cardinality estimation for the rewrite-based optimizer.
//
// Estimates consult stored ANALYZE snapshots (stats::TableStatistics with
// equi-depth histograms) through the provider first, and fall back to a
// one-off scan of the live relation (no histograms — they only pay for
// themselves when reused) when no snapshot exists.  Operators above the
// leaves use System-R style propagation: selectivity products over
// conjuncts, |L|·|R|/max(d_l, d_r) for equi-joins, distinct counts for δ
// and Γ.  Column references are resolved through π/σ/⋈ to their source
// relation, so join trees of any depth estimate from real column sketches.
//
// A subtree containing a relation that cannot be resolved has NO estimate:
// EstimateCardinality returns kNoEstimate (-1) rather than a fabricated
// default, and EXPLAIN renders `est=-`.  Estimates only steer plan choices
// (build sides, join order) — rewrite rules themselves are
// semantics-preserving regardless of estimate quality (Theorems 3.1–3.3).

#ifndef MRA_OPT_STATS_H_
#define MRA_OPT_STATS_H_

#include <map>
#include <string>
#include <vector>

#include "mra/algebra/evaluator.h"
#include "mra/algebra/plan.h"
#include "mra/stats/table_statistics.h"

namespace mra {
namespace opt {

/// Default selectivity of an equality comparison (σ or ⋈ conjunct).
inline constexpr double kEqSelectivity = 0.1;
/// Default selectivity of a range comparison.
inline constexpr double kRangeSelectivity = 1.0 / 3.0;
/// Selectivity of an unrecognised condition.
inline constexpr double kDefaultSelectivity = 0.5;
/// Sentinel: no estimate could be produced (unknown relation in the
/// subtree).  Strictly negative so callers can test `est < 0`.
inline constexpr double kNoEstimate = -1.0;

/// Resolves statistics for catalog relations during one optimization pass:
/// stored ANALYZE snapshots win (histograms included, possibly stale);
/// otherwise the live relation is scanned once (no histograms) and cached.
class StatsCache {
 public:
  explicit StatsCache(const RelationProvider* provider)
      : provider_(provider) {}

  /// Statistics for `name`, or nullptr when the relation is unknown.
  const stats::TableStatistics* StatsFor(const std::string& name);

 private:
  const RelationProvider* provider_;
  std::map<std::string, stats::TableStatistics> cache_;
};

/// Statistics of the source column behind output column `index` of `plan`,
/// traced through σ/π/δ/⋈/× down to a scan; nullptr when the column is
/// computed or the source relation is unknown.  Distinct counts read this
/// way are upper bounds below filtering operators.
const stats::ColumnStatistics* ResolveColumnStats(const Plan& plan,
                                                  size_t index,
                                                  StatsCache* cache);

/// Estimated selectivity of a condition (product over its conjuncts),
/// using fixed heuristics only.
double EstimateSelectivity(const ExprPtr& condition);

/// Selectivity of a condition over tuples of `schema` drawn from a
/// relation with the given statistics: equality and range comparisons
/// against literals use the column's histogram when present, else
/// 1/distinct and range interpolation; everything else falls back to the
/// fixed heuristics.  Null fractions scale comparison selectivities (a
/// comparison with NULL holds for no tuple).
double EstimateSelectivityWithStats(const ExprPtr& condition,
                                    const RelationSchema& schema,
                                    const stats::TableStatistics& stats);

/// Estimated total cardinality (counting duplicates) of `plan`, or
/// kNoEstimate when the subtree references a relation `provider` cannot
/// resolve.  With a non-null `cache`, selections, equi-joins, δ and Γ use
/// column statistics (stored snapshots first) instead of the fixed
/// selectivity constants.
double EstimateCardinality(const Plan& plan, const RelationProvider& provider,
                           StatsCache* cache = nullptr);

}  // namespace opt
}  // namespace mra

#endif  // MRA_OPT_STATS_H_
