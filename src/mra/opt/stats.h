// Cardinality estimation for the rewrite-based optimizer.
//
// Scans use exact catalog statistics (total and distinct cardinality of the
// live relation); operators above them use textbook System-R style
// heuristics.  Estimates only steer physical choices such as hash-join
// build-side selection — rewrite rules themselves are semantics-preserving
// regardless of estimate quality (Theorems 3.1–3.3).

#ifndef MRA_OPT_STATS_H_
#define MRA_OPT_STATS_H_

#include <map>
#include <string>
#include <vector>

#include "mra/algebra/evaluator.h"
#include "mra/algebra/plan.h"

namespace mra {
namespace opt {

/// Default selectivity of an equality comparison (σ or ⋈ conjunct).
inline constexpr double kEqSelectivity = 0.1;
/// Default selectivity of a range comparison.
inline constexpr double kRangeSelectivity = 1.0 / 3.0;
/// Selectivity of an unrecognised condition.
inline constexpr double kDefaultSelectivity = 0.5;

/// Per-attribute statistics gathered from a live relation.
struct ColumnStats {
  /// Number of distinct values in the column.
  size_t distinct = 0;
  /// Numeric/date range, when the domain is ordered-numeric.
  bool has_range = false;
  double min = 0.0;
  double max = 0.0;
};

/// Whole-relation statistics.
struct TableStats {
  uint64_t total_tuples = 0;
  size_t distinct_tuples = 0;
  std::vector<ColumnStats> columns;
};

/// Scans `relation` once, collecting per-column distinct counts and
/// numeric ranges.  Distinct counting is capped at `max_tracked_distinct`
/// values per column (counts beyond the cap extrapolate conservatively).
TableStats ComputeTableStats(const Relation& relation,
                             size_t max_tracked_distinct = 65536);

/// Lazily computes and caches TableStats for catalog relations during one
/// optimization pass.
class StatsCache {
 public:
  explicit StatsCache(const RelationProvider* provider)
      : provider_(provider) {}

  /// Statistics for `name`, or nullptr when the relation is unknown.
  const TableStats* StatsFor(const std::string& name);

 private:
  const RelationProvider* provider_;
  std::map<std::string, TableStats> cache_;
};

/// Estimated selectivity of a condition (product over its conjuncts),
/// using fixed heuristics only.
double EstimateSelectivity(const ExprPtr& condition);

/// Selectivity of a condition over tuples of `schema` drawn from a
/// relation with the given statistics: equality against a literal uses
/// 1/distinct, range comparisons interpolate against the column's value
/// range, everything else falls back to the fixed heuristics.
double EstimateSelectivityWithStats(const ExprPtr& condition,
                                    const RelationSchema& schema,
                                    const TableStats& stats);

/// Estimated total cardinality (counting duplicates) of `plan`.  Relations
/// missing from `provider` contribute a neutral default rather than an
/// error, so estimation never fails planning.  With a non-null `cache`,
/// selections and equi-joins directly over scans use live column
/// statistics instead of the fixed selectivity constants.
double EstimateCardinality(const Plan& plan, const RelationProvider& provider,
                           StatsCache* cache = nullptr);

}  // namespace opt
}  // namespace mra

#endif  // MRA_OPT_STATS_H_
