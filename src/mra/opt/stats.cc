#include "mra/opt/stats.h"

#include <algorithm>
#include <cmath>

#include "mra/obs/metrics.h"

namespace mra {
namespace opt {

namespace {

bool IsRangeDomain(Type type) {
  return type.IsNumeric() || type.kind() == TypeKind::kDate;
}

double ValueAsDouble(const Value& v) {
  if (v.kind() == TypeKind::kDate) return static_cast<double>(v.date_days());
  return v.AsReal();
}

obs::Counter* EstimateCallsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("stats.estimate_calls");
  return c;
}

double ConjunctSelectivity(const ExprPtr& conjunct) {
  if (conjunct->kind() == ExprKind::kLiteral) {
    const Value& v = static_cast<const LiteralExpr&>(*conjunct).value();
    if (v.kind() == TypeKind::kBool) return v.bool_value() ? 1.0 : 0.0;
    return kDefaultSelectivity;
  }
  if (conjunct->kind() == ExprKind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(*conjunct);
    switch (b.op()) {
      case BinaryOp::kEq:
        return kEqSelectivity;
      case BinaryOp::kNe:
        return 1.0 - kEqSelectivity;
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        return kRangeSelectivity;
      case BinaryOp::kOr: {
        double l = ConjunctSelectivity(b.lhs());
        double r = ConjunctSelectivity(b.rhs());
        return std::min(1.0, l + r - l * r);
      }
      default:
        return kDefaultSelectivity;
    }
  }
  if (conjunct->kind() == ExprKind::kUnary) {
    const auto& u = static_cast<const UnaryExpr&>(*conjunct);
    if (u.op() == UnaryOp::kNot) {
      return 1.0 - ConjunctSelectivity(u.operand());
    }
  }
  return kDefaultSelectivity;
}

// Matches `attr <op> literal` (either orientation); fills the attribute
// index, the comparison with the attribute on the LEFT, and the literal.
bool MatchAttrLiteral(const BinaryExpr& b, size_t* attr, BinaryOp* op,
                      Value* literal) {
  auto flipped = [](BinaryOp o) {
    switch (o) {
      case BinaryOp::kLt:
        return BinaryOp::kGt;
      case BinaryOp::kLe:
        return BinaryOp::kGe;
      case BinaryOp::kGt:
        return BinaryOp::kLt;
      case BinaryOp::kGe:
        return BinaryOp::kLe;
      default:
        return o;  // =, <> are symmetric
    }
  };
  if (b.lhs()->kind() == ExprKind::kAttrRef &&
      b.rhs()->kind() == ExprKind::kLiteral) {
    *attr = static_cast<const AttrRefExpr&>(*b.lhs()).index();
    *op = b.op();
    *literal = static_cast<const LiteralExpr&>(*b.rhs()).value();
    return true;
  }
  if (b.rhs()->kind() == ExprKind::kAttrRef &&
      b.lhs()->kind() == ExprKind::kLiteral) {
    *attr = static_cast<const AttrRefExpr&>(*b.rhs()).index();
    *op = flipped(b.op());
    *literal = static_cast<const LiteralExpr&>(*b.lhs()).value();
    return true;
  }
  return false;
}

// Selectivity of `column <op> literal` from one column's statistics.
// Comparisons with NULL hold for no tuple, so the non-null fraction scales
// every branch (always 1 under the current NULL-free domains).
double ColumnCompareSelectivity(const stats::ColumnStatistics& column,
                                BinaryOp op, const Value& literal) {
  double notnull = std::clamp(1.0 - column.null_fraction, 0.0, 1.0);
  bool numeric = IsRangeDomain(literal.type());
  double x = numeric ? ValueAsDouble(literal) : 0.0;
  switch (op) {
    case BinaryOp::kEq:
      if (numeric && !column.histogram.empty()) {
        return notnull * column.histogram.SelectivityEqual(x);
      }
      return notnull / std::max<double>(1.0, column.distinct);
    case BinaryOp::kNe:
      if (numeric && !column.histogram.empty()) {
        return notnull * (1.0 - column.histogram.SelectivityEqual(x));
      }
      return notnull * (1.0 - 1.0 / std::max<double>(1.0, column.distinct));
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (!numeric) return notnull * kRangeSelectivity;
      if (!column.histogram.empty()) {
        // ≤ and > need the boundary value's mass counted below; < and ≥
        // leave it above.
        bool inclusive = op == BinaryOp::kLe || op == BinaryOp::kGt;
        double less = column.histogram.SelectivityLess(x, inclusive);
        double s = (op == BinaryOp::kLt || op == BinaryOp::kLe)
                       ? less
                       : 1.0 - less;
        return notnull * std::clamp(s, 0.0, 1.0);
      }
      if (!column.has_range) return notnull * kRangeSelectivity;
      double width = column.max - column.min;
      if (width <= 0) return notnull * 0.5;
      double fraction = std::clamp((x - column.min) / width, 0.0, 1.0);
      return notnull * ((op == BinaryOp::kLt || op == BinaryOp::kLe)
                            ? fraction
                            : 1.0 - fraction);
    }
    default:
      return kDefaultSelectivity;
  }
}

double StatsConjunctSelectivity(const ExprPtr& conjunct,
                                const stats::TableStatistics& stats) {
  if (conjunct->kind() == ExprKind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(*conjunct);
    if (b.op() == BinaryOp::kOr) {
      double l = StatsConjunctSelectivity(b.lhs(), stats);
      double r = StatsConjunctSelectivity(b.rhs(), stats);
      return std::min(1.0, l + r - l * r);
    }
    size_t attr;
    BinaryOp op;
    Value literal;
    if (MatchAttrLiteral(b, &attr, &op, &literal) &&
        attr < stats.columns.size()) {
      switch (op) {
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return ColumnCompareSelectivity(stats.columns[attr], op, literal);
        default:
          break;
      }
    }
  }
  if (conjunct->kind() == ExprKind::kUnary) {
    const auto& u = static_cast<const UnaryExpr&>(*conjunct);
    if (u.op() == UnaryOp::kNot) {
      return 1.0 - StatsConjunctSelectivity(u.operand(), stats);
    }
  }
  return ConjunctSelectivity(conjunct);
}

// Recursive implementation; the public wrapper counts calls.
double Estimate(const Plan& plan, const RelationProvider& provider,
                StatsCache* cache);

// Selectivity of one conjunct over `input`'s tuples, resolving attribute
// references through the subtree to source-column statistics.
double DeepConjunctSelectivity(const ExprPtr& conjunct, const Plan& input,
                               StatsCache* cache) {
  if (cache != nullptr && conjunct->kind() == ExprKind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(*conjunct);
    size_t attr;
    BinaryOp op;
    Value literal;
    if (MatchAttrLiteral(b, &attr, &op, &literal)) {
      switch (op) {
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          const stats::ColumnStatistics* column =
              ResolveColumnStats(input, attr, cache);
          if (column != nullptr) {
            return ColumnCompareSelectivity(*column, op, literal);
          }
          break;
        }
        default:
          break;
      }
    }
  }
  if (conjunct->kind() == ExprKind::kUnary) {
    const auto& u = static_cast<const UnaryExpr&>(*conjunct);
    if (u.op() == UnaryOp::kNot) {
      return 1.0 - DeepConjunctSelectivity(u.operand(), input, cache);
    }
  }
  return ConjunctSelectivity(conjunct);
}

double EstimateJoin(const Plan& plan, const RelationProvider& provider,
                    StatsCache* cache) {
  double l = Estimate(*plan.child(0), provider, cache);
  double r = Estimate(*plan.child(1), provider, cache);
  if (l < 0 || r < 0) return kNoEstimate;
  size_t la = plan.child(0)->schema().arity();
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(plan.condition(), &conjuncts);
  double out = l * r;
  for (const ExprPtr& c : conjuncts) {
    // attr = attr across the two children: |L|·|R| / max(d_l, d_r).
    if (cache != nullptr && c->kind() == ExprKind::kBinary) {
      const auto& b = static_cast<const BinaryExpr&>(*c);
      if (b.op() == BinaryOp::kEq && b.lhs()->kind() == ExprKind::kAttrRef &&
          b.rhs()->kind() == ExprKind::kAttrRef) {
        size_t i = static_cast<const AttrRefExpr&>(*b.lhs()).index();
        size_t j = static_cast<const AttrRefExpr&>(*b.rhs()).index();
        if (i > j) std::swap(i, j);
        if (i < la && j >= la) {
          const stats::ColumnStatistics* lc =
              ResolveColumnStats(*plan.child(0), i, cache);
          const stats::ColumnStatistics* rc =
              ResolveColumnStats(*plan.child(1), j - la, cache);
          if (lc != nullptr && rc != nullptr) {
            double d = std::max<double>(
                {1.0, static_cast<double>(lc->distinct),
                 static_cast<double>(rc->distinct)});
            out /= d;
            continue;
          }
        }
      }
    }
    out *= ConjunctSelectivity(c);
  }
  return out;
}

double Estimate(const Plan& plan, const RelationProvider& provider,
                StatsCache* cache) {
  switch (plan.kind()) {
    case PlanKind::kScan: {
      if (cache != nullptr) {
        const stats::TableStatistics* stats =
            cache->StatsFor(plan.relation_name());
        if (stats == nullptr) return kNoEstimate;
        return static_cast<double>(stats->row_count);
      }
      Result<const Relation*> rel = provider.GetRelation(plan.relation_name());
      if (!rel.ok()) return kNoEstimate;
      return static_cast<double>((*rel)->size());
    }
    case PlanKind::kConstRel:
      return static_cast<double>(plan.const_relation().size());
    case PlanKind::kUnion: {
      double l = Estimate(*plan.child(0), provider, cache);
      double r = Estimate(*plan.child(1), provider, cache);
      if (l < 0 || r < 0) return kNoEstimate;
      return l + r;
    }
    case PlanKind::kDifference: {
      double l = Estimate(*plan.child(0), provider, cache);
      double r = Estimate(*plan.child(1), provider, cache);
      if (l < 0 || r < 0) return kNoEstimate;
      // Half the right side is assumed to hit the left side.
      return std::max(l - r / 2.0, l / 10.0);
    }
    case PlanKind::kIntersect: {
      double l = Estimate(*plan.child(0), provider, cache);
      double r = Estimate(*plan.child(1), provider, cache);
      if (l < 0 || r < 0) return kNoEstimate;
      return std::min(l, r) / 2.0;
    }
    case PlanKind::kProduct: {
      double l = Estimate(*plan.child(0), provider, cache);
      double r = Estimate(*plan.child(1), provider, cache);
      if (l < 0 || r < 0) return kNoEstimate;
      return l * r;
    }
    case PlanKind::kJoin:
      return EstimateJoin(plan, provider, cache);
    case PlanKind::kSelect: {
      double input = Estimate(*plan.child(0), provider, cache);
      if (input < 0) return kNoEstimate;
      std::vector<ExprPtr> conjuncts;
      SplitConjuncts(plan.condition(), &conjuncts);
      double s = 1.0;
      for (const ExprPtr& c : conjuncts) {
        s *= DeepConjunctSelectivity(c, *plan.child(0), cache);
      }
      return input * s;
    }
    case PlanKind::kProject:
      // π is additive under bag semantics: cardinality is unchanged —
      // exactly the property Example 3.2 relies on.
      return Estimate(*plan.child(0), provider, cache);
    case PlanKind::kUnique: {
      double n = Estimate(*plan.child(0), provider, cache);
      if (n < 0) return kNoEstimate;
      if (cache != nullptr && plan.child(0)->kind() == PlanKind::kScan) {
        const stats::TableStatistics* stats =
            cache->StatsFor(plan.child(0)->relation_name());
        if (stats != nullptr) {
          return static_cast<double>(stats->distinct_count);
        }
      }
      if (cache != nullptr) {
        // Distinct tuples never exceed the product of per-column distinct
        // counts; when every output column traces back to an analyzed
        // source column this bound is sound, and sharp for narrow
        // projections (δ(π_a R) on a low-cardinality a).
        double bound = 1.0;
        bool resolved = plan.schema().arity() > 0;
        for (size_t i = 0; resolved && i < plan.schema().arity(); ++i) {
          const stats::ColumnStatistics* column =
              ResolveColumnStats(*plan.child(0), i, cache);
          if (column == nullptr) {
            resolved = false;
            break;
          }
          bound *= static_cast<double>(std::max<uint64_t>(1, column->distinct));
        }
        if (resolved) return std::min(n, bound);
      }
      // Distinct-count guess without column statistics: sub-linear growth.
      return std::min(n, std::pow(n, 0.8) + 1.0);
    }
    case PlanKind::kGroupBy: {
      double n = Estimate(*plan.child(0), provider, cache);
      if (n < 0) return kNoEstimate;
      if (plan.group_keys().empty()) return 1.0;
      if (cache != nullptr && plan.group_keys().size() == 1) {
        const stats::ColumnStatistics* column =
            ResolveColumnStats(*plan.child(0), plan.group_keys()[0], cache);
        if (column != nullptr) {
          return std::min(
              n, static_cast<double>(std::max<uint64_t>(1, column->distinct)));
        }
      }
      return std::min(n, std::pow(n, 0.75) + 1.0);
    }
    case PlanKind::kClosure: {
      // Reachability can approach n² on dense inputs; assume moderate
      // fan-out growth.
      double n = Estimate(*plan.child(0), provider, cache);
      if (n < 0) return kNoEstimate;
      return std::min(n * n, n * 8.0 + 1.0);
    }
    case PlanKind::kSort: {
      // Ordering keeps the bag; a weighted LIMIT caps the (weighted)
      // cardinality the estimator already speaks in.
      double n = Estimate(*plan.child(0), provider, cache);
      if (n < 0) return kNoEstimate;
      if (plan.sort_limit() > 0) {
        return std::min(n, static_cast<double>(plan.sort_limit()));
      }
      return n;
    }
  }
  return kNoEstimate;
}

}  // namespace

const stats::TableStatistics* StatsCache::StatsFor(const std::string& name) {
  // Stored ANALYZE snapshots win: they carry histograms and survive
  // restarts, at the price of staleness.
  const stats::TableStatistics* stored = provider_->GetStatistics(name);
  if (stored != nullptr) return stored;
  auto it = cache_.find(name);
  if (it != cache_.end()) return &it->second;
  Result<const Relation*> rel = provider_->GetRelation(name);
  if (!rel.ok()) return nullptr;
  stats::AnalyzeOptions options;
  options.histograms = false;
  auto [inserted, ok] =
      cache_.emplace(name, stats::Analyze(**rel, 0, options));
  (void)ok;
  return &inserted->second;
}

const stats::ColumnStatistics* ResolveColumnStats(const Plan& plan,
                                                  size_t index,
                                                  StatsCache* cache) {
  if (cache == nullptr || index >= plan.schema().arity()) return nullptr;
  switch (plan.kind()) {
    case PlanKind::kScan: {
      const stats::TableStatistics* stats = cache->StatsFor(plan.relation_name());
      if (stats == nullptr || index >= stats->columns.size()) return nullptr;
      return &stats->columns[index];
    }
    case PlanKind::kSelect:
    case PlanKind::kUnique:
    case PlanKind::kSort:
      // Filtering/ordering keeps column identity; the source distinct count
      // is an upper bound for the filtered column.
      return ResolveColumnStats(*plan.child(0), index, cache);
    case PlanKind::kProject: {
      const ExprPtr& e = plan.projections()[index];
      if (e->kind() != ExprKind::kAttrRef) return nullptr;
      return ResolveColumnStats(
          *plan.child(0), static_cast<const AttrRefExpr&>(*e).index(), cache);
    }
    case PlanKind::kJoin:
    case PlanKind::kProduct: {
      size_t la = plan.child(0)->schema().arity();
      return index < la
                 ? ResolveColumnStats(*plan.child(0), index, cache)
                 : ResolveColumnStats(*plan.child(1), index - la, cache);
    }
    default:
      return nullptr;
  }
}

double EstimateSelectivity(const ExprPtr& condition) {
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(condition, &conjuncts);
  double s = 1.0;
  for (const ExprPtr& c : conjuncts) s *= ConjunctSelectivity(c);
  return s;
}

double EstimateSelectivityWithStats(const ExprPtr& condition,
                                    const RelationSchema& schema,
                                    const stats::TableStatistics& stats) {
  (void)schema;
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(condition, &conjuncts);
  double s = 1.0;
  for (const ExprPtr& c : conjuncts) {
    s *= StatsConjunctSelectivity(c, stats);
  }
  return s;
}

double EstimateCardinality(const Plan& plan, const RelationProvider& provider,
                           StatsCache* cache) {
  EstimateCallsCounter()->Inc();
  return Estimate(plan, provider, cache);
}

}  // namespace opt
}  // namespace mra
