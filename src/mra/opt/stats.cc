#include "mra/opt/stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace mra {
namespace opt {

namespace {

// Cardinality assumed for relations we cannot resolve.
constexpr double kUnknownCardinality = 1000.0;

bool IsRangeDomain(Type type) {
  return type.IsNumeric() || type.kind() == TypeKind::kDate;
}

double ValueAsDouble(const Value& v) {
  if (v.kind() == TypeKind::kDate) return static_cast<double>(v.date_days());
  return v.AsReal();
}

double ConjunctSelectivity(const ExprPtr& conjunct) {
  if (conjunct->kind() == ExprKind::kLiteral) {
    const Value& v = static_cast<const LiteralExpr&>(*conjunct).value();
    if (v.kind() == TypeKind::kBool) return v.bool_value() ? 1.0 : 0.0;
    return kDefaultSelectivity;
  }
  if (conjunct->kind() == ExprKind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(*conjunct);
    switch (b.op()) {
      case BinaryOp::kEq:
        return kEqSelectivity;
      case BinaryOp::kNe:
        return 1.0 - kEqSelectivity;
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        return kRangeSelectivity;
      case BinaryOp::kOr: {
        double l = ConjunctSelectivity(b.lhs());
        double r = ConjunctSelectivity(b.rhs());
        return std::min(1.0, l + r - l * r);
      }
      default:
        return kDefaultSelectivity;
    }
  }
  if (conjunct->kind() == ExprKind::kUnary) {
    const auto& u = static_cast<const UnaryExpr&>(*conjunct);
    if (u.op() == UnaryOp::kNot) {
      return 1.0 - ConjunctSelectivity(u.operand());
    }
  }
  return kDefaultSelectivity;
}

// Matches `attr <op> literal` (either orientation); fills the attribute
// index, the comparison with the attribute on the LEFT, and the literal.
bool MatchAttrLiteral(const BinaryExpr& b, size_t* attr, BinaryOp* op,
                      Value* literal) {
  auto flipped = [](BinaryOp o) {
    switch (o) {
      case BinaryOp::kLt:
        return BinaryOp::kGt;
      case BinaryOp::kLe:
        return BinaryOp::kGe;
      case BinaryOp::kGt:
        return BinaryOp::kLt;
      case BinaryOp::kGe:
        return BinaryOp::kLe;
      default:
        return o;  // =, <> are symmetric
    }
  };
  if (b.lhs()->kind() == ExprKind::kAttrRef &&
      b.rhs()->kind() == ExprKind::kLiteral) {
    *attr = static_cast<const AttrRefExpr&>(*b.lhs()).index();
    *op = b.op();
    *literal = static_cast<const LiteralExpr&>(*b.rhs()).value();
    return true;
  }
  if (b.rhs()->kind() == ExprKind::kAttrRef &&
      b.lhs()->kind() == ExprKind::kLiteral) {
    *attr = static_cast<const AttrRefExpr&>(*b.rhs()).index();
    *op = flipped(b.op());
    *literal = static_cast<const LiteralExpr&>(*b.lhs()).value();
    return true;
  }
  return false;
}

double StatsConjunctSelectivity(const ExprPtr& conjunct,
                                const RelationSchema& schema,
                                const TableStats& stats) {
  if (conjunct->kind() == ExprKind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(*conjunct);
    if (b.op() == BinaryOp::kOr) {
      double l = StatsConjunctSelectivity(b.lhs(), schema, stats);
      double r = StatsConjunctSelectivity(b.rhs(), schema, stats);
      return std::min(1.0, l + r - l * r);
    }
    size_t attr;
    BinaryOp op;
    Value literal;
    if (MatchAttrLiteral(b, &attr, &op, &literal) &&
        attr < stats.columns.size()) {
      const ColumnStats& column = stats.columns[attr];
      switch (op) {
        case BinaryOp::kEq:
          return 1.0 / std::max<double>(1.0, column.distinct);
        case BinaryOp::kNe:
          return 1.0 - 1.0 / std::max<double>(1.0, column.distinct);
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          if (!column.has_range ||
              !IsRangeDomain(literal.type())) {
            break;
          }
          double width = column.max - column.min;
          if (width <= 0) return 0.5;
          double fraction =
              (ValueAsDouble(literal) - column.min) / width;
          fraction = std::clamp(fraction, 0.0, 1.0);
          return (op == BinaryOp::kLt || op == BinaryOp::kLe)
                     ? fraction
                     : 1.0 - fraction;
        }
        default:
          break;
      }
    }
  }
  if (conjunct->kind() == ExprKind::kUnary) {
    const auto& u = static_cast<const UnaryExpr&>(*conjunct);
    if (u.op() == UnaryOp::kNot) {
      return 1.0 - StatsConjunctSelectivity(u.operand(), schema, stats);
    }
  }
  return ConjunctSelectivity(conjunct);
}

}  // namespace

TableStats ComputeTableStats(const Relation& relation,
                             size_t max_tracked_distinct) {
  TableStats stats;
  stats.total_tuples = relation.size();
  stats.distinct_tuples = relation.distinct_size();
  size_t arity = relation.schema().arity();
  stats.columns.resize(arity);

  std::vector<std::unordered_set<size_t>> seen_hashes(arity);
  std::vector<bool> capped(arity, false);
  std::vector<bool> first(arity, true);
  for (const auto& [tuple, count] : relation) {
    (void)count;
    for (size_t i = 0; i < arity; ++i) {
      const Value& v = tuple.at(i);
      if (!capped[i]) {
        seen_hashes[i].insert(v.Hash());
        if (seen_hashes[i].size() >= max_tracked_distinct) capped[i] = true;
      }
      if (IsRangeDomain(v.type())) {
        double x = ValueAsDouble(v);
        ColumnStats& column = stats.columns[i];
        if (first[i]) {
          column.min = column.max = x;
          column.has_range = true;
          first[i] = false;
        } else {
          column.min = std::min(column.min, x);
          column.max = std::max(column.max, x);
        }
      }
    }
  }
  for (size_t i = 0; i < arity; ++i) {
    // Hash-set distinct counting is exact up to hash collisions; when the
    // cap was hit, extrapolate conservatively to the distinct tuple count.
    stats.columns[i].distinct =
        capped[i] ? stats.distinct_tuples : seen_hashes[i].size();
  }
  return stats;
}

const TableStats* StatsCache::StatsFor(const std::string& name) {
  auto it = cache_.find(name);
  if (it != cache_.end()) return &it->second;
  Result<const Relation*> rel = provider_->GetRelation(name);
  if (!rel.ok()) return nullptr;
  auto [inserted, ok] = cache_.emplace(name, ComputeTableStats(**rel));
  (void)ok;
  return &inserted->second;
}

double EstimateSelectivity(const ExprPtr& condition) {
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(condition, &conjuncts);
  double s = 1.0;
  for (const ExprPtr& c : conjuncts) s *= ConjunctSelectivity(c);
  return s;
}

double EstimateSelectivityWithStats(const ExprPtr& condition,
                                    const RelationSchema& schema,
                                    const TableStats& stats) {
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(condition, &conjuncts);
  double s = 1.0;
  for (const ExprPtr& c : conjuncts) {
    s *= StatsConjunctSelectivity(c, schema, stats);
  }
  return s;
}

double EstimateCardinality(const Plan& plan, const RelationProvider& provider,
                           StatsCache* cache) {
  switch (plan.kind()) {
    case PlanKind::kScan: {
      Result<const Relation*> rel = provider.GetRelation(plan.relation_name());
      if (!rel.ok()) return kUnknownCardinality;
      return static_cast<double>((*rel)->size());
    }
    case PlanKind::kConstRel:
      return static_cast<double>(plan.const_relation().size());
    case PlanKind::kUnion:
      return EstimateCardinality(*plan.child(0), provider, cache) +
             EstimateCardinality(*plan.child(1), provider, cache);
    case PlanKind::kDifference: {
      double l = EstimateCardinality(*plan.child(0), provider, cache);
      double r = EstimateCardinality(*plan.child(1), provider, cache);
      // Half the right side is assumed to hit the left side.
      return std::max(l - r / 2.0, l / 10.0);
    }
    case PlanKind::kIntersect:
      return std::min(EstimateCardinality(*plan.child(0), provider, cache),
                      EstimateCardinality(*plan.child(1), provider, cache)) /
             2.0;
    case PlanKind::kProduct:
      return EstimateCardinality(*plan.child(0), provider, cache) *
             EstimateCardinality(*plan.child(1), provider, cache);
    case PlanKind::kJoin: {
      double l = EstimateCardinality(*plan.child(0), provider, cache);
      double r = EstimateCardinality(*plan.child(1), provider, cache);
      // With statistics and an equi-join over two scans, use the classic
      // |L|·|R| / max(d(L.k), d(R.k)) estimate.
      if (cache != nullptr && plan.child(0)->kind() == PlanKind::kScan &&
          plan.child(1)->kind() == PlanKind::kScan) {
        const TableStats* ls = cache->StatsFor(plan.child(0)->relation_name());
        const TableStats* rs = cache->StatsFor(plan.child(1)->relation_name());
        if (ls != nullptr && rs != nullptr &&
            plan.condition()->kind() == ExprKind::kBinary) {
          const auto& b = static_cast<const BinaryExpr&>(*plan.condition());
          if (b.op() == BinaryOp::kEq &&
              b.lhs()->kind() == ExprKind::kAttrRef &&
              b.rhs()->kind() == ExprKind::kAttrRef) {
            size_t i = static_cast<const AttrRefExpr&>(*b.lhs()).index();
            size_t j = static_cast<const AttrRefExpr&>(*b.rhs()).index();
            size_t la = plan.child(0)->schema().arity();
            if (i > j) std::swap(i, j);
            if (i < la && j >= la && i < ls->columns.size() &&
                j - la < rs->columns.size()) {
              double d = std::max<double>(
                  {1.0, static_cast<double>(ls->columns[i].distinct),
                   static_cast<double>(rs->columns[j - la].distinct)});
              return l * r / d;
            }
          }
        }
      }
      return l * r * EstimateSelectivity(plan.condition());
    }
    case PlanKind::kSelect: {
      double input = EstimateCardinality(*plan.child(0), provider, cache);
      if (cache != nullptr && plan.child(0)->kind() == PlanKind::kScan) {
        const TableStats* stats =
            cache->StatsFor(plan.child(0)->relation_name());
        if (stats != nullptr) {
          return input * EstimateSelectivityWithStats(
                             plan.condition(), plan.child(0)->schema(),
                             *stats);
        }
      }
      return input * EstimateSelectivity(plan.condition());
    }
    case PlanKind::kProject:
      // π is additive under bag semantics: cardinality is unchanged —
      // exactly the property Example 3.2 relies on.
      return EstimateCardinality(*plan.child(0), provider, cache);
    case PlanKind::kUnique: {
      double n = EstimateCardinality(*plan.child(0), provider, cache);
      if (cache != nullptr && plan.child(0)->kind() == PlanKind::kScan) {
        const TableStats* stats =
            cache->StatsFor(plan.child(0)->relation_name());
        if (stats != nullptr) {
          return static_cast<double>(stats->distinct_tuples);
        }
      }
      // Distinct-count guess without column statistics: sub-linear growth.
      return std::min(n, std::pow(n, 0.8) + 1.0);
    }
    case PlanKind::kGroupBy: {
      double n = EstimateCardinality(*plan.child(0), provider, cache);
      if (plan.group_keys().empty()) return 1.0;
      if (cache != nullptr && plan.child(0)->kind() == PlanKind::kScan &&
          plan.group_keys().size() == 1) {
        const TableStats* stats =
            cache->StatsFor(plan.child(0)->relation_name());
        size_t key = plan.group_keys()[0];
        if (stats != nullptr && key < stats->columns.size()) {
          return static_cast<double>(
              std::max<size_t>(1, stats->columns[key].distinct));
        }
      }
      return std::min(n, std::pow(n, 0.75) + 1.0);
    }
    case PlanKind::kClosure: {
      // Reachability can approach n² on dense inputs; assume moderate
      // fan-out growth.
      double n = EstimateCardinality(*plan.child(0), provider, cache);
      return std::min(n * n, n * 8.0 + 1.0);
    }
  }
  return kUnknownCardinality;
}

}  // namespace opt
}  // namespace mra
