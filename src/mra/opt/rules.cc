#include "mra/opt/rules.h"

#include <algorithm>

#include "mra/opt/stats.h"

namespace mra {
namespace opt {

namespace {

// Splits the conjuncts of `condition` (over a ⊕-concatenated schema with
// `left_arity` left attributes) into left-only, right-only (shifted to the
// right child's frame) and cross-side groups.
void SplitBySide(const ExprPtr& condition, size_t left_arity,
                 std::vector<ExprPtr>* left, std::vector<ExprPtr>* right,
                 std::vector<ExprPtr>* mixed) {
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(condition, &conjuncts);
  for (const ExprPtr& c : conjuncts) {
    std::set<size_t> attrs = AttrsUsed(c);
    bool any_left = false, any_right = false;
    for (size_t a : attrs) {
      (a < left_arity ? any_left : any_right) = true;
    }
    if (!any_right) {
      left->push_back(c);  // Includes constant conjuncts.
    } else if (!any_left) {
      right->push_back(ShiftAttrs(c, -static_cast<int64_t>(left_arity)));
    } else {
      mixed->push_back(c);
    }
  }
}

// Wraps `plan` in a selection unless the conjunct list is empty.
Result<PlanPtr> MaybeSelect(const std::vector<ExprPtr>& conjuncts,
                            PlanPtr plan) {
  if (conjuncts.empty()) return plan;
  return Plan::Select(CombineConjuncts(conjuncts), std::move(plan));
}

// True when the projection expressions referenced by `attrs` are all plain
// attribute references or literals (safe to duplicate by substitution).
bool CheapToSubstitute(const std::vector<ExprPtr>& exprs,
                       const std::set<size_t>& attrs) {
  for (size_t a : attrs) {
    MRA_CHECK_LT(a, exprs.size());
    ExprKind k = exprs[a]->kind();
    if (k != ExprKind::kAttrRef && k != ExprKind::kLiteral) return false;
  }
  return true;
}

}  // namespace

Result<PlanPtr> WithChildren(const PlanPtr& plan,
                             std::vector<PlanPtr> children) {
  bool same = children.size() == plan->num_children();
  for (size_t i = 0; same && i < children.size(); ++i) {
    same = children[i] == plan->child(i);
  }
  if (same) return plan;
  switch (plan->kind()) {
    case PlanKind::kScan:
    case PlanKind::kConstRel:
      return plan;
    case PlanKind::kUnion:
      return Plan::Union(std::move(children[0]), std::move(children[1]));
    case PlanKind::kDifference:
      return Plan::Difference(std::move(children[0]), std::move(children[1]));
    case PlanKind::kIntersect:
      return Plan::Intersect(std::move(children[0]), std::move(children[1]));
    case PlanKind::kProduct:
      return Plan::Product(std::move(children[0]), std::move(children[1]));
    case PlanKind::kJoin:
      return Plan::Join(plan->condition(), std::move(children[0]),
                        std::move(children[1]));
    case PlanKind::kSelect:
      return Plan::Select(plan->condition(), std::move(children[0]));
    case PlanKind::kProject: {
      std::vector<std::string> names;
      for (const Attribute& a : plan->schema().attributes()) {
        names.push_back(a.name);
      }
      return Plan::Project(plan->projections(), std::move(children[0]),
                           std::move(names));
    }
    case PlanKind::kUnique:
      return Plan::Unique(std::move(children[0]));
    case PlanKind::kClosure:
      return Plan::Closure(std::move(children[0]));
    case PlanKind::kGroupBy: {
      std::vector<AggSpec> aggs = plan->aggregates();
      for (size_t i = 0; i < aggs.size(); ++i) {
        aggs[i].output_name =
            plan->schema().attribute(plan->group_keys().size() + i).name;
      }
      return Plan::GroupBy(plan->group_keys(), std::move(aggs),
                           std::move(children[0]));
    }
    case PlanKind::kSort:
      return Plan::Sort(plan->sort_keys(), plan->sort_desc(),
                        plan->sort_limit(), std::move(children[0]));
  }
  return Status::Internal("bad plan kind");
}

Result<PlanPtr> TrySplitSelect(const PlanPtr& plan) {
  if (plan->kind() != PlanKind::kSelect) return PlanPtr();
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(plan->condition(), &conjuncts);
  if (conjuncts.size() < 2) return PlanPtr();
  PlanPtr current = plan->child(0);
  // Last conjunct innermost, first outermost: σ_p1 ends up on top.
  for (size_t i = conjuncts.size(); i-- > 0;) {
    MRA_ASSIGN_OR_RETURN(current, Plan::Select(conjuncts[i], current));
  }
  return current;
}

Result<PlanPtr> TryMergeSelects(const PlanPtr& plan) {
  if (plan->kind() != PlanKind::kSelect) return PlanPtr();
  const PlanPtr& child = plan->child(0);
  if (child->kind() != PlanKind::kSelect) return PlanPtr();
  // σ_p(σ_q E) = σ_{q ∧ p} E: evaluate q first to preserve any
  // short-circuit guarding (e.g. q checks a divisor that p divides by).
  MRA_ASSIGN_OR_RETURN(
      PlanPtr merged,
      Plan::Select(And(child->condition(), plan->condition()),
                   child->child(0)));
  return merged;
}

Result<PlanPtr> TrySelectPushdown(const PlanPtr& plan) {
  // Case A: a bare join whose condition has one-sided conjuncts.
  if (plan->kind() == PlanKind::kJoin) {
    size_t la = plan->child(0)->schema().arity();
    std::vector<ExprPtr> left, right, mixed;
    SplitBySide(plan->condition(), la, &left, &right, &mixed);
    if (left.empty() && right.empty()) return PlanPtr();
    MRA_ASSIGN_OR_RETURN(PlanPtr l, MaybeSelect(left, plan->child(0)));
    MRA_ASSIGN_OR_RETURN(PlanPtr r, MaybeSelect(right, plan->child(1)));
    if (mixed.empty()) {
      return Plan::Product(std::move(l), std::move(r));
    }
    return Plan::Join(CombineConjuncts(mixed), std::move(l), std::move(r));
  }

  if (plan->kind() != PlanKind::kSelect) return PlanPtr();
  const ExprPtr& p = plan->condition();
  const PlanPtr& child = plan->child(0);

  switch (child->kind()) {
    case PlanKind::kUnion: {
      // Theorem 3.2: σ_p(E1 ⊎ E2) = σ_pE1 ⊎ σ_pE2.
      MRA_ASSIGN_OR_RETURN(PlanPtr l, Plan::Select(p, child->child(0)));
      MRA_ASSIGN_OR_RETURN(PlanPtr r, Plan::Select(p, child->child(1)));
      return Plan::Union(std::move(l), std::move(r));
    }
    case PlanKind::kDifference: {
      // Bag-valid: max(0, a−b) commutes with a pointwise filter.
      MRA_ASSIGN_OR_RETURN(PlanPtr l, Plan::Select(p, child->child(0)));
      MRA_ASSIGN_OR_RETURN(PlanPtr r, Plan::Select(p, child->child(1)));
      return Plan::Difference(std::move(l), std::move(r));
    }
    case PlanKind::kIntersect: {
      MRA_ASSIGN_OR_RETURN(PlanPtr l, Plan::Select(p, child->child(0)));
      MRA_ASSIGN_OR_RETURN(PlanPtr r, Plan::Select(p, child->child(1)));
      return Plan::Intersect(std::move(l), std::move(r));
    }
    case PlanKind::kUnique: {
      // σ_p(δE) = δ(σ_pE).
      MRA_ASSIGN_OR_RETURN(PlanPtr sel, Plan::Select(p, child->child(0)));
      return Plan::Unique(std::move(sel));
    }
    case PlanKind::kProject: {
      // σ_p(π_α E) = π_α(σ_{p[α]} E) when the substitution is cheap.
      std::set<size_t> attrs = AttrsUsed(p);
      if (!CheapToSubstitute(child->projections(), attrs)) return PlanPtr();
      ExprPtr pushed = SubstituteAttrs(p, child->projections());
      MRA_ASSIGN_OR_RETURN(PlanPtr sel,
                           Plan::Select(std::move(pushed), child->child(0)));
      std::vector<std::string> names;
      for (const Attribute& a : child->schema().attributes()) {
        names.push_back(a.name);
      }
      return Plan::Project(child->projections(), std::move(sel),
                           std::move(names));
    }
    case PlanKind::kProduct:
    case PlanKind::kJoin: {
      // σ over × / ⋈: merge conditions, split per side.  Cross-side
      // conjuncts form the join condition (Theorem 3.1: σ_φ(E1 × E2) =
      // E1 ⋈_φ E2).
      ExprPtr all = child->kind() == PlanKind::kJoin
                        ? And(child->condition(), p)
                        : p;
      size_t la = child->child(0)->schema().arity();
      std::vector<ExprPtr> left, right, mixed;
      SplitBySide(all, la, &left, &right, &mixed);
      if (left.empty() && right.empty() &&
          child->kind() == PlanKind::kJoin) {
        // Nothing pushes; re-merging p into the join is still progress
        // (removes the σ node), unless p is empty — it never is here.
        return Plan::Join(CombineConjuncts(mixed), child->child(0),
                          child->child(1));
      }
      if (left.empty() && right.empty() && mixed.size() == 1 &&
          child->kind() == PlanKind::kProduct) {
        // σ_φ(E1 × E2) → E1 ⋈_φ E2 with nothing to push.
        return Plan::Join(mixed[0], child->child(0), child->child(1));
      }
      MRA_ASSIGN_OR_RETURN(PlanPtr l, MaybeSelect(left, child->child(0)));
      MRA_ASSIGN_OR_RETURN(PlanPtr r, MaybeSelect(right, child->child(1)));
      if (mixed.empty()) return Plan::Product(std::move(l), std::move(r));
      return Plan::Join(CombineConjuncts(mixed), std::move(l), std::move(r));
    }
    default:
      return PlanPtr();
  }
}

Result<PlanPtr> TryMergeProjects(const PlanPtr& plan) {
  if (plan->kind() != PlanKind::kProject) return PlanPtr();
  const PlanPtr& child = plan->child(0);
  if (child->kind() != PlanKind::kProject) return PlanPtr();
  std::set<size_t> used;
  for (const ExprPtr& e : plan->projections()) CollectAttrs(e, &used);
  if (!CheapToSubstitute(child->projections(), used)) return PlanPtr();
  std::vector<ExprPtr> merged;
  merged.reserve(plan->projections().size());
  for (const ExprPtr& e : plan->projections()) {
    merged.push_back(SubstituteAttrs(e, child->projections()));
  }
  std::vector<std::string> names;
  for (const Attribute& a : plan->schema().attributes()) names.push_back(a.name);
  return Plan::Project(std::move(merged), child->child(0), std::move(names));
}

Result<PlanPtr> TryUniqueSimplify(const PlanPtr& plan) {
  if (plan->kind() != PlanKind::kUnique) return PlanPtr();
  const PlanPtr& child = plan->child(0);
  switch (child->kind()) {
    case PlanKind::kUnique:
    case PlanKind::kGroupBy:
    case PlanKind::kClosure:
      // Already duplicate-free.
      return child;
    case PlanKind::kProduct: {
      // δ(E1 × E2) = δE1 × δE2 — and the product of sets is a set.
      MRA_ASSIGN_OR_RETURN(PlanPtr l, Plan::Unique(child->child(0)));
      MRA_ASSIGN_OR_RETURN(PlanPtr r, Plan::Unique(child->child(1)));
      return Plan::Product(std::move(l), std::move(r));
    }
    case PlanKind::kJoin: {
      // δ(E1 ⋈_φ E2) = δE1 ⋈_φ δE2 (σ commutes with δ, then as above).
      MRA_ASSIGN_OR_RETURN(PlanPtr l, Plan::Unique(child->child(0)));
      MRA_ASSIGN_OR_RETURN(PlanPtr r, Plan::Unique(child->child(1)));
      return Plan::Join(child->condition(), std::move(l), std::move(r));
    }
    default:
      return PlanPtr();
  }
}

Result<PlanPtr> TryUniquePreDedupUnion(const PlanPtr& plan) {
  if (plan->kind() != PlanKind::kUnique) return PlanPtr();
  const PlanPtr& child = plan->child(0);
  if (child->kind() != PlanKind::kUnion) return PlanPtr();
  // Guard against re-application: skip when both inputs are already δ.
  if (child->child(0)->kind() == PlanKind::kUnique &&
      child->child(1)->kind() == PlanKind::kUnique) {
    return PlanPtr();
  }
  MRA_ASSIGN_OR_RETURN(PlanPtr l, Plan::Unique(child->child(0)));
  MRA_ASSIGN_OR_RETURN(PlanPtr r, Plan::Unique(child->child(1)));
  MRA_ASSIGN_OR_RETURN(PlanPtr u, Plan::Union(std::move(l), std::move(r)));
  return Plan::Unique(std::move(u));
}

namespace {

bool IsBoolLiteral(const ExprPtr& e, bool value) {
  if (e->kind() != ExprKind::kLiteral) return false;
  const Value& v = static_cast<const LiteralExpr&>(*e).value();
  return v.kind() == TypeKind::kBool && v.bool_value() == value;
}

bool IsIdentityProjection(const Plan& plan) {
  const auto& exprs = plan.projections();
  const RelationSchema& in = plan.child(0)->schema();
  if (exprs.size() != in.arity()) return false;
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (exprs[i]->kind() != ExprKind::kAttrRef ||
        static_cast<const AttrRefExpr&>(*exprs[i]).index() != i) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<PlanPtr> TryConstantSimplify(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanKind::kSelect: {
      ExprPtr folded = FoldConstants(plan->condition());
      if (IsBoolLiteral(folded, true)) return plan->child(0);
      if (IsBoolLiteral(folded, false)) {
        return Plan::ConstRel(Relation(plan->schema()));
      }
      if (folded == plan->condition()) return PlanPtr();
      return Plan::Select(std::move(folded), plan->child(0));
    }
    case PlanKind::kJoin: {
      ExprPtr folded = FoldConstants(plan->condition());
      if (IsBoolLiteral(folded, true)) {
        return Plan::Product(plan->child(0), plan->child(1));
      }
      if (IsBoolLiteral(folded, false)) {
        return Plan::ConstRel(Relation(plan->schema()));
      }
      if (folded == plan->condition()) return PlanPtr();
      return Plan::Join(std::move(folded), plan->child(0), plan->child(1));
    }
    case PlanKind::kProject: {
      if (IsIdentityProjection(*plan)) return plan->child(0);
      bool changed = false;
      std::vector<ExprPtr> folded;
      folded.reserve(plan->projections().size());
      for (const ExprPtr& e : plan->projections()) {
        ExprPtr f = FoldConstants(e);
        changed |= (f != e);
        folded.push_back(std::move(f));
      }
      if (!changed) return PlanPtr();
      std::vector<std::string> names;
      for (const Attribute& a : plan->schema().attributes()) {
        names.push_back(a.name);
      }
      return Plan::Project(std::move(folded), plan->child(0),
                           std::move(names));
    }
    default:
      return PlanPtr();
  }
}

Result<PlanPtr> TryJoinCommute(const PlanPtr& plan,
                               const RelationProvider& provider,
                               StatsCache* cache) {
  if (plan->kind() != PlanKind::kJoin && plan->kind() != PlanKind::kProduct) {
    return PlanPtr();
  }
  double l = EstimateCardinality(*plan->child(0), provider, cache);
  double r = EstimateCardinality(*plan->child(1), provider, cache);
  // No estimate on either side (kNoEstimate) means no basis to commute.
  if (l < 0 || r < 0) return PlanPtr();
  // The right child is the hash-join build side / inner loop: keep the
  // smaller input there.  A 10% margin prevents churn on near-ties.
  if (r <= l * 1.1) return PlanPtr();
  size_t la = plan->child(0)->schema().arity();
  size_t ra = plan->child(1)->schema().arity();
  if (plan->kind() == PlanKind::kProduct) {
    // Commuting × permutes columns; restore the original order above.
    MRA_ASSIGN_OR_RETURN(PlanPtr swapped,
                         Plan::Product(plan->child(1), plan->child(0)));
    std::vector<size_t> restore;
    restore.reserve(la + ra);
    for (size_t i = 0; i < la; ++i) restore.push_back(ra + i);
    for (size_t j = 0; j < ra; ++j) restore.push_back(j);
    return Plan::ProjectIndexes(restore, std::move(swapped));
  }
  // Join: remap the condition into the swapped frame, then restore order.
  std::vector<size_t> remap(la + ra);
  for (size_t i = 0; i < la; ++i) remap[i] = ra + i;
  for (size_t j = 0; j < ra; ++j) remap[la + j] = j;
  ExprPtr cond = RemapAttrs(plan->condition(), remap);
  MRA_ASSIGN_OR_RETURN(
      PlanPtr swapped,
      Plan::Join(std::move(cond), plan->child(1), plan->child(0)));
  std::vector<size_t> restore;
  restore.reserve(la + ra);
  for (size_t i = 0; i < la; ++i) restore.push_back(ra + i);
  for (size_t j = 0; j < ra; ++j) restore.push_back(j);
  return Plan::ProjectIndexes(restore, std::move(swapped));
}

// --- Column pruning (early projection, Example 3.2). ---

namespace {

struct PruneResult {
  PlanPtr plan;
  // mapping[old_index] = index in the pruned plan's output; only entries
  // for requested columns are meaningful.
  std::vector<size_t> mapping;
};

std::vector<size_t> NeededList(const std::vector<bool>& needed) {
  std::vector<size_t> out;
  for (size_t i = 0; i < needed.size(); ++i) {
    if (needed[i]) out.push_back(i);
  }
  return out;
}

// Builds the identity prune result (all columns kept, plan unchanged).
PruneResult Unpruned(const PlanPtr& plan) {
  PruneResult r;
  r.mapping.resize(plan->schema().arity());
  for (size_t i = 0; i < r.mapping.size(); ++i) r.mapping[i] = i;
  r.plan = plan;
  return r;
}

Result<PruneResult> PruneRec(const PlanPtr& plan,
                             const std::vector<bool>& needed);

// Recurses with all columns required.
Result<PruneResult> PruneAll(const PlanPtr& plan) {
  return PruneRec(plan, std::vector<bool>(plan->schema().arity(), true));
}

// Wraps `r.plan` with a projection keeping only `needed` (in the ORIGINAL
// plan's frame), updating the mapping.  No-op when nothing is dropped.
Result<PruneResult> Narrow(PruneResult r, const std::vector<bool>& needed) {
  std::vector<size_t> keep;
  for (size_t i = 0; i < needed.size(); ++i) {
    if (needed[i]) keep.push_back(r.mapping[i]);
  }
  if (keep.size() == r.plan->schema().arity()) {
    bool identity = true;
    for (size_t i = 0; i < keep.size(); ++i) identity &= (keep[i] == i);
    if (identity) return r;
  }
  MRA_ASSIGN_OR_RETURN(PlanPtr narrowed,
                       Plan::ProjectIndexes(keep, std::move(r.plan)));
  PruneResult out;
  out.plan = std::move(narrowed);
  out.mapping.assign(needed.size(), 0);
  size_t next = 0;
  for (size_t i = 0; i < needed.size(); ++i) {
    if (needed[i]) out.mapping[i] = next++;
  }
  return out;
}

Result<PruneResult> PruneRec(const PlanPtr& plan,
                             const std::vector<bool>& needed) {
  const size_t arity = plan->schema().arity();
  MRA_CHECK_EQ(needed.size(), arity);
  switch (plan->kind()) {
    case PlanKind::kScan:
    case PlanKind::kConstRel:
      return Narrow(Unpruned(plan), needed);
    case PlanKind::kSelect: {
      std::vector<bool> child_needed = needed;
      for (size_t a : AttrsUsed(plan->condition())) child_needed[a] = true;
      MRA_ASSIGN_OR_RETURN(PruneResult c, PruneRec(plan->child(0), child_needed));
      ExprPtr cond = RemapAttrs(plan->condition(), c.mapping);
      MRA_ASSIGN_OR_RETURN(PlanPtr sel,
                           Plan::Select(std::move(cond), std::move(c.plan)));
      // The select's output frame equals the pruned child's frame; drop
      // the condition-only columns above it.
      PruneResult r;
      r.plan = std::move(sel);
      r.mapping = c.mapping;
      return Narrow(std::move(r), needed);
    }
    case PlanKind::kProject: {
      const auto& exprs = plan->projections();
      std::vector<bool> child_needed(plan->child(0)->schema().arity(), false);
      std::vector<ExprPtr> kept_exprs;
      std::vector<std::string> kept_names;
      for (size_t i = 0; i < exprs.size(); ++i) {
        if (!needed[i]) continue;
        for (size_t a : AttrsUsed(exprs[i])) child_needed[a] = true;
        kept_exprs.push_back(exprs[i]);
        kept_names.push_back(plan->schema().attribute(i).name);
      }
      if (kept_exprs.empty()) {
        // Definition 2.4 requires n >= 1: keep the first column to
        // preserve cardinality.
        for (size_t a : AttrsUsed(exprs[0])) child_needed[a] = true;
        kept_exprs.push_back(exprs[0]);
        kept_names.push_back(plan->schema().attribute(0).name);
      }
      MRA_ASSIGN_OR_RETURN(PruneResult c, PruneRec(plan->child(0), child_needed));
      std::vector<ExprPtr> remapped;
      remapped.reserve(kept_exprs.size());
      for (const ExprPtr& e : kept_exprs) {
        remapped.push_back(RemapAttrs(e, c.mapping));
      }
      MRA_ASSIGN_OR_RETURN(PlanPtr proj,
                           Plan::Project(std::move(remapped), std::move(c.plan),
                                         std::move(kept_names)));
      PruneResult r;
      r.plan = std::move(proj);
      r.mapping.assign(arity, 0);
      size_t next = 0;
      for (size_t i = 0; i < exprs.size(); ++i) {
        if (needed[i]) r.mapping[i] = next++;
      }
      return r;
    }
    case PlanKind::kUnion: {
      // Theorem 3.2: π distributes over ⊎ — prune both sides alike.
      MRA_ASSIGN_OR_RETURN(PruneResult l, PruneRec(plan->child(0), needed));
      MRA_ASSIGN_OR_RETURN(PruneResult r, PruneRec(plan->child(1), needed));
      MRA_ASSIGN_OR_RETURN(PlanPtr u,
                           Plan::Union(std::move(l.plan), std::move(r.plan)));
      PruneResult out;
      out.plan = std::move(u);
      out.mapping = l.mapping;
      return out;
    }
    case PlanKind::kDifference:
    case PlanKind::kIntersect: {
      // π does NOT distribute over − or ∩ in the bag algebra: keep the
      // children whole and narrow above.
      MRA_ASSIGN_OR_RETURN(PruneResult l, PruneAll(plan->child(0)));
      MRA_ASSIGN_OR_RETURN(PruneResult r, PruneAll(plan->child(1)));
      Result<PlanPtr> combined =
          plan->kind() == PlanKind::kDifference
              ? Plan::Difference(std::move(l.plan), std::move(r.plan))
              : Plan::Intersect(std::move(l.plan), std::move(r.plan));
      MRA_RETURN_IF_ERROR(combined);
      return Narrow(Unpruned(std::move(combined).value()), needed);
    }
    case PlanKind::kUnique: {
      // π does not commute with δ: keep the child whole, narrow above δ.
      MRA_ASSIGN_OR_RETURN(PruneResult c, PruneAll(plan->child(0)));
      MRA_ASSIGN_OR_RETURN(PlanPtr u, Plan::Unique(std::move(c.plan)));
      return Narrow(Unpruned(std::move(u)), needed);
    }
    case PlanKind::kClosure: {
      // The closure's recursion needs both columns: keep the child whole
      // and narrow above.
      MRA_ASSIGN_OR_RETURN(PruneResult c, PruneAll(plan->child(0)));
      MRA_ASSIGN_OR_RETURN(PlanPtr cl, Plan::Closure(std::move(c.plan)));
      return Narrow(Unpruned(std::move(cl)), needed);
    }
    case PlanKind::kProduct:
    case PlanKind::kJoin: {
      size_t la = plan->child(0)->schema().arity();
      size_t ra = plan->child(1)->schema().arity();
      std::vector<bool> lneed(la, false), rneed(ra, false);
      for (size_t i = 0; i < la; ++i) lneed[i] = needed[i];
      for (size_t j = 0; j < ra; ++j) rneed[j] = needed[la + j];
      if (plan->kind() == PlanKind::kJoin) {
        for (size_t a : AttrsUsed(plan->condition())) {
          if (a < la) {
            lneed[a] = true;
          } else {
            rneed[a - la] = true;
          }
        }
      }
      // π preserves total cardinality, so keeping one column per side
      // preserves the product's multiplicities when a side is unused.
      if (NeededList(lneed).empty()) lneed[0] = true;
      if (NeededList(rneed).empty()) rneed[0] = true;
      MRA_ASSIGN_OR_RETURN(PruneResult l, PruneRec(plan->child(0), lneed));
      MRA_ASSIGN_OR_RETURN(PruneResult r, PruneRec(plan->child(1), rneed));
      size_t la2 = l.plan->schema().arity();
      PlanPtr joined;
      if (plan->kind() == PlanKind::kJoin) {
        std::vector<size_t> remap(la + ra, 0);
        for (size_t i = 0; i < la; ++i) {
          if (lneed[i]) remap[i] = l.mapping[i];
        }
        for (size_t j = 0; j < ra; ++j) {
          if (rneed[j]) remap[la + j] = la2 + r.mapping[j];
        }
        ExprPtr cond = RemapAttrs(plan->condition(), remap);
        MRA_ASSIGN_OR_RETURN(joined, Plan::Join(std::move(cond),
                                                std::move(l.plan),
                                                std::move(r.plan)));
      } else {
        MRA_ASSIGN_OR_RETURN(
            joined, Plan::Product(std::move(l.plan), std::move(r.plan)));
      }
      PruneResult out;
      out.plan = std::move(joined);
      out.mapping.assign(arity, 0);
      for (size_t i = 0; i < la; ++i) {
        if (lneed[i]) out.mapping[i] = l.mapping[i];
      }
      for (size_t j = 0; j < ra; ++j) {
        if (rneed[j]) out.mapping[la + j] = la2 + r.mapping[j];
      }
      return Narrow(std::move(out), needed);
    }
    case PlanKind::kGroupBy: {
      std::vector<bool> child_needed(plan->child(0)->schema().arity(), false);
      for (size_t k : plan->group_keys()) child_needed[k] = true;
      for (const AggSpec& a : plan->aggregates()) child_needed[a.attr] = true;
      MRA_ASSIGN_OR_RETURN(PruneResult c, PruneRec(plan->child(0), child_needed));
      std::vector<size_t> keys;
      keys.reserve(plan->group_keys().size());
      for (size_t k : plan->group_keys()) keys.push_back(c.mapping[k]);
      std::vector<AggSpec> aggs = plan->aggregates();
      for (AggSpec& a : aggs) {
        // Preserve the display name chosen at original planning time.
        size_t out_index = plan->group_keys().size() +
                           static_cast<size_t>(&a - aggs.data());
        a.output_name = plan->schema().attribute(out_index).name;
        a.attr = c.mapping[a.attr];
      }
      MRA_ASSIGN_OR_RETURN(
          PlanPtr g,
          Plan::GroupBy(std::move(keys), std::move(aggs), std::move(c.plan)));
      return Narrow(Unpruned(std::move(g)), needed);
    }
    case PlanKind::kSort: {
      // The sort's total order ties ALL columns (the whole-tuple tiebreak,
      // and a weighted LIMIT observes every column's multiplicities), so
      // the child stays whole; narrow above the sort.
      MRA_ASSIGN_OR_RETURN(PruneResult c, PruneAll(plan->child(0)));
      MRA_ASSIGN_OR_RETURN(PlanPtr s,
                           Plan::Sort(plan->sort_keys(), plan->sort_desc(),
                                      plan->sort_limit(), std::move(c.plan)));
      return Narrow(Unpruned(std::move(s)), needed);
    }
  }
  return Status::Internal("bad plan kind");
}

}  // namespace

Result<PlanPtr> PruneColumns(const PlanPtr& root) {
  MRA_ASSIGN_OR_RETURN(PruneResult r, PruneAll(root));
  return r.plan;
}

}  // namespace opt
}  // namespace mra
