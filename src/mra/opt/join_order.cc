#include "mra/opt/join_order.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mra/opt/rules.h"

namespace mra {
namespace opt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// Adopt a reordering only when it models at least 1% cheaper — churn
// protection against estimate noise on near-ties.
constexpr double kAdoptMargin = 0.99;
// Masks are uint32_t; regions beyond this many leaves are left alone.
constexpr size_t kMaxLeaves = 31;

bool IsJoinLike(const Plan& node) {
  return node.kind() == PlanKind::kJoin || node.kind() == PlanKind::kProduct;
}

size_t CountLeaves(const Plan& node) {
  if (!IsJoinLike(node)) return 1;
  return CountLeaves(*node.child(0)) + CountLeaves(*node.child(1));
}

/// One conjunct of the region's join conditions, in the global frame (the
/// concatenation of all leaf schemas in front-end order).
struct Conjunct {
  ExprPtr expr;
  uint32_t mask = 0;  // leaves whose columns it references
  bool placed = false;
  // Filled for `leaf_a.col_a = leaf_b.col_b` equi edges.
  bool is_edge = false;
  size_t leaf_a = 0, leaf_b = 0;
  size_t col_a = 0, col_b = 0;  // leaf-local column indexes
  double edge_distinct = 1.0;   // max distinct over the two endpoints
};

struct Region {
  std::vector<PlanPtr> leaves;    // front-end order, recursively reordered
  std::vector<size_t> offsets;    // global column offset per leaf
  std::vector<double> rows;       // estimated rows per leaf
  std::vector<Conjunct> conjuncts;

  size_t LeafOf(size_t global_column) const {
    size_t leaf = 0;
    while (leaf + 1 < offsets.size() && offsets[leaf + 1] <= global_column) {
      ++leaf;
    }
    return leaf;
  }
};

/// A bracketing of the region: either one leaf or a join of two subtrees.
struct TreeNode {
  uint32_t mask = 0;
  int left = -1, right = -1;  // arena indexes
  int leaf = -1;              // leaf id when a leaf
};

double JoinCost(double left_rows, double right_rows, double out_rows) {
  return kBuildCostPerRow * std::min(left_rows, right_rows) +
         kProbeCostPerRow * std::max(left_rows, right_rows) +
         kOutputCostPerRow * out_rows;
}

/// Estimated output rows of joining the leaf set `mask` with every
/// applicable conjunct applied — a function of the set only, never of the
/// bracketing, which keeps costs comparable across orders.
double RowsOf(uint32_t mask, const Region& region) {
  double rows = 1.0;
  for (size_t i = 0; i < region.leaves.size(); ++i) {
    if (mask & (1u << i)) rows *= std::max(1.0, region.rows[i]);
  }
  for (const Conjunct& c : region.conjuncts) {
    if ((c.mask & mask) != c.mask) continue;
    if (c.is_edge) {
      rows /= std::max(1.0, c.edge_distinct);
    } else {
      rows *= EstimateSelectivity(c.expr);
    }
  }
  return std::max(rows, 1.0);
}

/// Cost of the original bracketing under the same model; `next_leaf`
/// walks the in-order leaf sequence.
double OriginalCost(const Plan& node, const Region& region, size_t* next_leaf,
                    uint32_t* mask_out) {
  if (!IsJoinLike(node)) {
    *mask_out = 1u << (*next_leaf)++;
    return 0.0;
  }
  uint32_t lm = 0, rm = 0;
  double cl = OriginalCost(*node.child(0), region, next_leaf, &lm);
  double cr = OriginalCost(*node.child(1), region, next_leaf, &rm);
  *mask_out = lm | rm;
  return cl + cr +
         JoinCost(RowsOf(lm, region), RowsOf(rm, region),
                  RowsOf(lm | rm, region));
}

bool HasCrossEdge(uint32_t a, uint32_t b, const Region& region) {
  for (const Conjunct& c : region.conjuncts) {
    if (!c.is_edge) continue;
    uint32_t ea = 1u << c.leaf_a, eb = 1u << c.leaf_b;
    if (((ea & a) && (eb & b)) || ((ea & b) && (eb & a))) return true;
  }
  return false;
}

/// Selinger-style DP over leaf subsets; fills `nodes` and returns the
/// arena index of the best tree for the full set, with its cost.
int EnumerateDp(const Region& region, std::vector<TreeNode>* nodes,
                double* cost_out) {
  size_t n = region.leaves.size();
  uint32_t full = (1u << n) - 1;
  std::vector<double> best(full + 1, kInf);
  std::vector<std::pair<uint32_t, uint32_t>> split(full + 1, {0, 0});
  std::vector<double> rows(full + 1, 0.0);
  for (uint32_t m = 1; m <= full; ++m) rows[m] = RowsOf(m, region);
  for (size_t i = 0; i < n; ++i) best[1u << i] = 0.0;

  std::vector<uint32_t> order;
  for (uint32_t m = 1; m <= full; ++m) {
    if ((m & (m - 1)) != 0) order.push_back(m);  // skip singletons
  }
  std::sort(order.begin(), order.end(), [](uint32_t a, uint32_t b) {
    int pa = __builtin_popcount(a), pb = __builtin_popcount(b);
    return pa != pb ? pa < pb : a < b;
  });

  for (uint32_t m : order) {
    // Prefer splits linked by an equi edge; fall back to cross products
    // only when the subgraph is disconnected.
    for (int require_edge = 1; require_edge >= 0; --require_edge) {
      for (uint32_t s = (m - 1) & m; s != 0; s = (s - 1) & m) {
        uint32_t t = m ^ s;
        if (s > t) continue;  // JoinCost is symmetric in the children
        if (require_edge && !HasCrossEdge(s, t, region)) continue;
        double c = best[s] + best[t] + JoinCost(rows[s], rows[t], rows[m]);
        if (c < best[m]) {
          best[m] = c;
          split[m] = {s, t};
        }
      }
      if (best[m] < kInf) break;
    }
  }

  // Materialise the winning bracketing into the arena.
  struct Builder {
    const std::vector<std::pair<uint32_t, uint32_t>>& split;
    std::vector<TreeNode>* nodes;
    int operator()(uint32_t m) const {
      TreeNode node;
      node.mask = m;
      if ((m & (m - 1)) == 0) {
        node.leaf = __builtin_ctz(m);
      } else {
        node.left = (*this)(split[m].first);
        node.right = (*this)(split[m].second);
      }
      nodes->push_back(node);
      return static_cast<int>(nodes->size()) - 1;
    }
  };
  *cost_out = best[full];
  return Builder{split, nodes}(full);
}

/// Greedy fallback: seed with the cheapest pair, then repeatedly absorb
/// the leaf that keeps the running result smallest (connected leaves
/// first).  Produces a left-deep tree.
int EnumerateGreedy(const Region& region, std::vector<TreeNode>* nodes,
                    double* cost_out) {
  size_t n = region.leaves.size();
  uint32_t best_pair = 0;
  double best_rows = kInf;
  for (int require_edge = 1; require_edge >= 0 && best_pair == 0;
       --require_edge) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        uint32_t m = (1u << i) | (1u << j);
        if (require_edge && !HasCrossEdge(1u << i, 1u << j, region)) continue;
        double r = RowsOf(m, region);
        if (r < best_rows) {
          best_rows = r;
          best_pair = m;
        }
      }
    }
  }

  auto make_leaf = [&](size_t i) {
    TreeNode leaf;
    leaf.mask = 1u << i;
    leaf.leaf = static_cast<int>(i);
    nodes->push_back(leaf);
    return static_cast<int>(nodes->size()) - 1;
  };
  size_t a = __builtin_ctz(best_pair);
  size_t b = __builtin_ctz(best_pair & (best_pair - 1));
  // Smaller side right (build side); ties keep front-end order.
  if (region.rows[a] < region.rows[b]) std::swap(a, b);
  TreeNode root;
  root.mask = best_pair;
  root.left = make_leaf(a);
  root.right = make_leaf(b);
  nodes->push_back(root);
  int root_idx = static_cast<int>(nodes->size()) - 1;
  double cost = JoinCost(region.rows[a], region.rows[b],
                         RowsOf(best_pair, region));

  uint32_t covered = best_pair;
  uint32_t full = (1u << n) - 1;
  while (covered != full) {
    size_t pick = n;
    double pick_rows = kInf;
    for (int require_edge = 1; require_edge >= 0 && pick == n;
         --require_edge) {
      for (size_t i = 0; i < n; ++i) {
        if (covered & (1u << i)) continue;
        if (require_edge && !HasCrossEdge(covered, 1u << i, region)) continue;
        double r = RowsOf(covered | (1u << i), region);
        if (r < pick_rows) {
          pick_rows = r;
          pick = i;
        }
      }
    }
    double covered_rows = RowsOf(covered, region);
    cost += JoinCost(covered_rows, region.rows[pick], pick_rows);
    TreeNode next;
    next.mask = covered | (1u << pick);
    next.left = root_idx;
    next.right = make_leaf(pick);
    nodes->push_back(next);
    root_idx = static_cast<int>(nodes->size()) - 1;
    covered = next.mask;
  }
  *cost_out = cost;
  return root_idx;
}

struct Built {
  PlanPtr plan;
  std::vector<size_t> frame;  // frame[position] = global column index
};

/// Rebuilds the region along the chosen bracketing, placing every
/// conjunct at the lowest node covering its leaves.
Result<Built> BuildTree(int idx, const std::vector<TreeNode>& nodes,
                        Region* region) {
  const TreeNode& node = nodes[idx];
  size_t total = region->offsets.back() +
                 region->leaves.back()->schema().arity();
  if (node.leaf >= 0) {
    Built out;
    out.plan = region->leaves[node.leaf];
    size_t arity = out.plan->schema().arity();
    out.frame.reserve(arity);
    for (size_t i = 0; i < arity; ++i) {
      out.frame.push_back(region->offsets[node.leaf] + i);
    }
    // Single-leaf conjuncts (rare post-pushdown) apply right here.
    std::vector<ExprPtr> local;
    for (Conjunct& c : region->conjuncts) {
      if (c.placed || c.mask != node.mask) continue;
      c.placed = true;
      local.push_back(
          ShiftAttrs(c.expr, -static_cast<int64_t>(region->offsets[node.leaf])));
    }
    if (!local.empty()) {
      MRA_ASSIGN_OR_RETURN(
          out.plan, Plan::Select(CombineConjuncts(local), out.plan));
    }
    return out;
  }

  MRA_ASSIGN_OR_RETURN(Built l, BuildTree(node.left, nodes, region));
  MRA_ASSIGN_OR_RETURN(Built r, BuildTree(node.right, nodes, region));
  Built out;
  out.frame = l.frame;
  out.frame.insert(out.frame.end(), r.frame.begin(), r.frame.end());
  std::vector<size_t> remap(total, 0);
  for (size_t p = 0; p < out.frame.size(); ++p) remap[out.frame[p]] = p;
  std::vector<ExprPtr> conds;
  for (Conjunct& c : region->conjuncts) {
    if (c.placed || (c.mask & node.mask) != c.mask) continue;
    c.placed = true;
    conds.push_back(RemapAttrs(c.expr, remap));
  }
  if (conds.empty()) {
    MRA_ASSIGN_OR_RETURN(out.plan, Plan::Product(l.plan, r.plan));
  } else {
    MRA_ASSIGN_OR_RETURN(
        out.plan, Plan::Join(CombineConjuncts(conds), l.plan, r.plan));
  }
  return out;
}

std::string LeafLabel(const Plan& node) {
  if (node.kind() == PlanKind::kScan) return node.relation_name();
  for (const PlanPtr& child : node.children()) {
    std::string inner = LeafLabel(*child);
    if (!inner.empty()) return inner;
  }
  return std::string();
}

void CollectOrder(int idx, const std::vector<TreeNode>& nodes,
                  const Region& region, std::string* out) {
  const TreeNode& node = nodes[idx];
  if (node.leaf >= 0) {
    std::string label = LeafLabel(*region.leaves[node.leaf]);
    if (label.empty()) label = "#" + std::to_string(node.leaf);
    if (!out->empty()) out->append(" ⋈ ");
    out->append(label);
    return;
  }
  CollectOrder(node.left, nodes, region, out);
  CollectOrder(node.right, nodes, region, out);
}

Result<size_t> Flatten(const PlanPtr& node, size_t offset,
                       const RelationProvider& provider, StatsCache* cache,
                       std::vector<std::string>* trail, Region* region) {
  if (IsJoinLike(*node)) {
    MRA_ASSIGN_OR_RETURN(
        size_t la,
        Flatten(node->child(0), offset, provider, cache, trail, region));
    MRA_ASSIGN_OR_RETURN(
        size_t ra, Flatten(node->child(1), offset + la, provider, cache,
                           trail, region));
    if (node->kind() == PlanKind::kJoin) {
      std::vector<ExprPtr> parts;
      SplitConjuncts(node->condition(), &parts);
      for (const ExprPtr& c : parts) {
        Conjunct conjunct;
        conjunct.expr = ShiftAttrs(c, static_cast<int64_t>(offset));
        region->conjuncts.push_back(std::move(conjunct));
      }
    }
    return la + ra;
  }
  MRA_ASSIGN_OR_RETURN(PlanPtr leaf,
                       ReorderJoins(node, provider, cache, trail));
  region->offsets.push_back(offset);
  region->leaves.push_back(std::move(leaf));
  return region->leaves.back()->schema().arity();
}

// Rebuilds the original bracketing over the (recursively reordered)
// leaves — used when the reorder is not adopted.
Result<PlanPtr> RebuildOriginal(const PlanPtr& node, const Region& region,
                                size_t* next_leaf) {
  if (!IsJoinLike(*node)) return region.leaves[(*next_leaf)++];
  MRA_ASSIGN_OR_RETURN(PlanPtr l,
                       RebuildOriginal(node->child(0), region, next_leaf));
  MRA_ASSIGN_OR_RETURN(PlanPtr r,
                       RebuildOriginal(node->child(1), region, next_leaf));
  std::vector<PlanPtr> children{std::move(l), std::move(r)};
  return WithChildren(node, std::move(children));
}

Result<PlanPtr> ReorderRegion(const PlanPtr& root,
                              const RelationProvider& provider,
                              StatsCache* cache,
                              std::vector<std::string>* trail) {
  Region region;
  MRA_ASSIGN_OR_RETURN(size_t total_arity,
                       Flatten(root, 0, provider, cache, trail, &region));
  (void)total_arity;
  size_t n = region.leaves.size();

  auto keep_original = [&]() {
    size_t next = 0;
    return RebuildOriginal(root, region, &next);
  };

  if (n > kMaxLeaves) return keep_original();
  // Estimates for every leaf; a leaf without one disables the region.
  region.rows.reserve(n);
  for (const PlanPtr& leaf : region.leaves) {
    double rows = EstimateCardinality(*leaf, provider, cache);
    if (rows < 0) return keep_original();
    region.rows.push_back(rows);
  }

  // Classify conjuncts: leaf masks, equi edges with distinct counts.
  for (Conjunct& c : region.conjuncts) {
    for (size_t a : AttrsUsed(c.expr)) {
      c.mask |= 1u << region.LeafOf(a);
    }
    if (c.expr->kind() != ExprKind::kBinary) continue;
    const auto& b = static_cast<const BinaryExpr&>(*c.expr);
    if (b.op() != BinaryOp::kEq || b.lhs()->kind() != ExprKind::kAttrRef ||
        b.rhs()->kind() != ExprKind::kAttrRef) {
      continue;
    }
    size_t i = static_cast<const AttrRefExpr&>(*b.lhs()).index();
    size_t j = static_cast<const AttrRefExpr&>(*b.rhs()).index();
    size_t li = region.LeafOf(i), lj = region.LeafOf(j);
    if (li == lj) continue;
    c.is_edge = true;
    c.leaf_a = li;
    c.leaf_b = lj;
    c.col_a = i - region.offsets[li];
    c.col_b = j - region.offsets[lj];
    const stats::ColumnStatistics* ca =
        ResolveColumnStats(*region.leaves[li], c.col_a, cache);
    const stats::ColumnStatistics* cb =
        ResolveColumnStats(*region.leaves[lj], c.col_b, cache);
    // Unknown endpoints assume key-like columns (distinct ≈ rows).
    double da = ca != nullptr ? static_cast<double>(ca->distinct)
                              : region.rows[li];
    double db = cb != nullptr ? static_cast<double>(cb->distinct)
                              : region.rows[lj];
    c.edge_distinct = std::max(1.0, std::max(da, db));
  }

  std::vector<TreeNode> nodes;
  double best_cost = kInf;
  int best_root = n <= kDpLeafLimit
                      ? EnumerateDp(region, &nodes, &best_cost)
                      : EnumerateGreedy(region, &nodes, &best_cost);

  size_t next = 0;
  uint32_t orig_mask = 0;
  double orig_cost = OriginalCost(*root, region, &next, &orig_mask);
  if (!(best_cost < orig_cost * kAdoptMargin)) return keep_original();

  MRA_ASSIGN_OR_RETURN(Built built, BuildTree(best_root, nodes, &region));
  // Any conjunct left unplaced would change semantics; fail safe.
  for (const Conjunct& c : region.conjuncts) {
    if (!c.placed) return keep_original();
  }
  // Restore the front-end column order above the reordered tree.
  size_t total = built.frame.size();
  std::vector<size_t> restore(total, 0);
  for (size_t p = 0; p < total; ++p) restore[built.frame[p]] = p;
  bool identity = true;
  for (size_t g = 0; g < total && identity; ++g) identity = restore[g] == g;
  PlanPtr result = built.plan;
  if (!identity) {
    MRA_ASSIGN_OR_RETURN(result,
                         Plan::ProjectIndexes(restore, std::move(result)));
  }
  if (trail != nullptr) {
    std::string order;
    CollectOrder(best_root, nodes, region, &order);
    trail->push_back(std::move(order));
  }
  return result;
}

}  // namespace

Result<PlanPtr> ReorderJoins(const PlanPtr& plan,
                             const RelationProvider& provider,
                             StatsCache* cache,
                             std::vector<std::string>* trail) {
  if (IsJoinLike(*plan)) {
    if (CountLeaves(*plan) >= 3) {
      return ReorderRegion(plan, provider, cache, trail);
    }
    // Two-leaf regions are build-side choices, handled by join_commute —
    // but their children may contain deeper regions.
  }
  std::vector<PlanPtr> children;
  children.reserve(plan->num_children());
  for (const PlanPtr& child : plan->children()) {
    MRA_ASSIGN_OR_RETURN(PlanPtr c,
                         ReorderJoins(child, provider, cache, trail));
    children.push_back(std::move(c));
  }
  return WithChildren(plan, std::move(children));
}

}  // namespace opt
}  // namespace mra
