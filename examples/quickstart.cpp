// Quickstart: the multi-set extended relational algebra through the C++
// API, walking the paper's running example (the beer database) through
// Examples 3.1, 3.2 and 4.1.
//
//   $ ./build/examples/quickstart

#include <iostream>

#include "mra/algebra/ops.h"
#include "mra/algebra/plan.h"
#include "mra/catalog/catalog.h"
#include "mra/exec/physical_planner.h"
#include "mra/opt/optimizer.h"
#include "mra/util/printer.h"

namespace {

using namespace mra;  // NOLINT — example brevity

// Aborts with a message on error; examples run on valid inputs.
template <typename T>
T Check(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  // --- Build the beer database of the paper (§3.1). ----------------------
  // beer(name, brewery, alcperc) and brewery(name, city, country) —
  // relations are MULTI-SETS: note the duplicate 'pils' tuple.
  Relation beer(RelationSchema("beer", {{"name", Type::String()},
                                        {"brewery", Type::String()},
                                        {"alcperc", Type::Real()}}));
  auto add_beer = [&beer](const char* n, const char* b, double a,
                          uint64_t count) {
    Check(beer.Insert(Tuple({Value::Str(n), Value::Str(b), Value::Real(a)}),
                      count));
  };
  add_beer("pils", "Guineken", 5.0, 2);  // multiplicity 2!
  add_beer("dubbel", "Guineken", 6.5, 1);
  add_beer("dubbel", "Bavapils", 7.0, 1);
  add_beer("stout", "Kirin", 4.2, 1);

  Relation brewery(RelationSchema("brewery", {{"name", Type::String()},
                                              {"city", Type::String()},
                                              {"country", Type::String()}}));
  auto add_brewery = [&brewery](const char* n, const char* c,
                                const char* co) {
    Check(brewery.Insert(Tuple({Value::Str(n), Value::Str(c),
                                Value::Str(co)})));
  };
  add_brewery("Guineken", "Amsterdam", "NL");
  add_brewery("Bavapils", "Lieshout", "NL");
  add_brewery("Kirin", "Tokyo", "JP");

  Catalog catalog;
  Check(catalog.CreateRelation(beer.schema()));
  Check(catalog.SetRelation("beer", beer));
  Check(catalog.CreateRelation(brewery.schema()));
  Check(catalog.SetRelation("brewery", brewery));

  std::cout << "The beer database (duplicates shown in the # column):\n\n";
  util::PrintRelation(std::cout, beer);
  std::cout << "\n";
  util::PrintRelation(std::cout, brewery);

  // --- Example 3.1: names of beers brewn in the Netherlands. -------------
  // π_(%1) σ_(%6='NL') (beer ⋈_(%2=%4) brewery)
  PlanPtr scan_beer = Plan::Scan("beer", beer.schema());
  PlanPtr scan_brewery = Plan::Scan("brewery", brewery.schema());
  PlanPtr join = Check(Plan::Join(Eq(Attr(1), Attr(3)), scan_beer,
                                  scan_brewery));
  PlanPtr dutch = Check(Plan::Select(Eq(Attr(5), Lit("NL")), join));
  PlanPtr names = Check(Plan::ProjectIndexes({0}, dutch));

  std::cout << "\nExample 3.1 — Dutch beer names (a multi-set; 'dubbel' "
               "appears twice because two Dutch brewers brew one):\n\n";
  std::cout << "  expression: " << names->ToInlineString() << "\n\n";
  Relation dutch_names = Check(exec::ExecutePlan(names, catalog));
  util::PrintRelation(std::cout, dutch_names);

  // --- Example 3.2: average alcohol percentage per country. --------------
  PlanPtr avg_plan = Check(Plan::GroupBy(
      {5}, {{AggKind::kAvg, 2, "avg_alcperc"}}, join));
  std::cout << "\nExample 3.2 — AVG(alcperc) per country (multiplicities "
               "weight the average: NL is (5.0*2 + 6.5 + 7.0)/4):\n\n";
  Relation averages = Check(exec::ExecutePlan(avg_plan, catalog));
  util::PrintRelation(std::cout, averages);

  // The optimizer inserts the size-reducing projection of Example 3.2
  // automatically — and, because the algebra is a bag algebra, the result
  // provably does not change (it WOULD change under set semantics).
  opt::Optimizer optimizer(&catalog);
  PlanPtr optimized = Check(optimizer.Optimize(avg_plan));
  std::cout << "\nThe optimizer's plan (early projection inserted below "
               "the group-by):\n\n"
            << optimized->ToString();

  // --- Example 4.1: Guineken raises alcohol percentages by 10%. ----------
  // update(beer, σ_(%2='Guineken') beer, (%1, %2, %3 * 1.1)) — executed
  // here by its definition R ← (R − E) ⊎ π_α(R ∩ E).
  Relation matched = Check(
      ops::Select(Eq(Attr(1), Lit("Guineken")), beer));
  Relation untouched = Check(ops::Difference(beer, matched));
  Relation rewritten = Check(ops::Project(
      {Attr(0), Attr(1), Mul(Attr(2), Lit(1.1))}, matched));
  Relation updated(beer.schema());
  for (const auto& [tuple, count] : Check(ops::Union(untouched, rewritten))) {
    Check(updated.Insert(tuple, count));
  }
  std::cout << "\nExample 4.1 — after update(beer, "
               "select(%2='Guineken', beer), [%1, %2, %3*1.1]):\n\n";
  util::PrintRelation(std::cout, updated);

  std::cout << "\nDone.  See examples/xra_repl.cpp for the same operations "
               "in the textual XRA language, and examples/sql_demo.cpp for "
               "the SQL front end.\n";
  return 0;
}
