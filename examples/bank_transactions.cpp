// Transactions and durability (§4.3): a small bank ledger where transfers
// run as transaction brackets.  A transfer that would overdraw an account
// aborts atomically; committed transfers survive a process restart through
// WAL recovery.
//
//   $ ./build/examples/bank_transactions /tmp/mra_bank

#include <filesystem>
#include <iostream>

#include "mra/algebra/ops.h"
#include "mra/algebra/plan.h"
#include "mra/txn/database.h"
#include "mra/txn/transaction.h"
#include "mra/util/printer.h"

namespace {

using namespace mra;  // NOLINT — example brevity

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    std::exit(1);
  }
}

template <typename T>
T Check(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

RelationSchema AccountSchema() {
  return RelationSchema("account",
                        {{"owner", Type::String()},
                         {"balance", Type::Decimal()}});
}

Relation OneRow(const std::string& owner, int64_t scaled_balance) {
  Relation r(AccountSchema());
  Check(r.Insert(Tuple({Value::Str(owner),
                        Value::DecimalScaled(scaled_balance)})));
  return r;
}

// Reads an account's balance (scaled decimal) from the transaction's view.
Result<int64_t> BalanceOf(const RelationProvider& view,
                          const std::string& owner) {
  MRA_ASSIGN_OR_RETURN(const Relation* accounts, view.GetRelation("account"));
  MRA_ASSIGN_OR_RETURN(
      Relation match,
      ops::Select(Eq(Attr(0), Lit(Value::Str(owner))), *accounts));
  if (match.empty()) return Status::NotFound("no account for " + owner);
  return match.begin()->first.at(1).decimal_scaled();
}

// Transfers `amount` (scaled decimal) from one owner to another inside a
// transaction bracket.  No overdraft check here: the database's `nonneg`
// integrity constraint (the §4.3 correctness property) rejects any commit
// whose post-state holds a negative balance, and atomicity guarantees the
// bracket then has no effect at all.
Status Transfer(Database* db, const std::string& from, const std::string& to,
                int64_t amount) {
  MRA_ASSIGN_OR_RETURN(std::unique_ptr<Transaction> txn, db->Begin());
  MRA_ASSIGN_OR_RETURN(int64_t from_balance, BalanceOf(*txn, from));
  MRA_ASSIGN_OR_RETURN(int64_t to_balance, BalanceOf(*txn, to));
  MRA_RETURN_IF_ERROR(txn->Delete("account", OneRow(from, from_balance)));
  MRA_RETURN_IF_ERROR(txn->Delete("account", OneRow(to, to_balance)));
  MRA_RETURN_IF_ERROR(
      txn->Insert("account", OneRow(from, from_balance - amount)));
  MRA_RETURN_IF_ERROR(txn->Insert("account", OneRow(to, to_balance + amount)));
  return txn->Commit();  // constraint checked here
}

void PrintAccounts(const Database& db) {
  auto accounts = db.catalog().GetRelation("account");
  Check(accounts.status());
  util::PrintRelation(std::cout, **accounts);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/mra_bank_example";
  std::filesystem::remove_all(dir);  // fresh demo run

  std::cout << "=== Session 1: open, fund accounts, transfer ===\n\n";
  {
    auto db_or = Database::Open({.directory = dir});
    Check(db_or.status());
    std::unique_ptr<Database> db = std::move(*db_or);
    Check(db->CreateRelation(AccountSchema()));

    // Integrity constraint: no account balance may go negative.  The
    // violation query σ_(balance < 0)(account) must stay empty in every
    // committed state.
    PlanPtr accounts = Plan::Scan("account", AccountSchema());
    Check(db->AddConstraint(
        "nonneg",
        Check(Plan::Select(Lt(Attr(1), Lit(Value::Decimal(0))), accounts))));

    auto txn = db->Begin();
    Check(txn.status());
    Check((*txn)->Insert("account", OneRow("alice", 1000000)));  // 100.0000
    Check((*txn)->Insert("account", OneRow("bob", 250000)));     //  25.0000
    Check((*txn)->Commit());
    PrintAccounts(*db);

    std::cout << "\ntransfer alice -> bob, 40.0000: ";
    Status ok = Transfer(db.get(), "alice", "bob", 400000);
    std::cout << (ok.ok() ? "committed" : ok.ToString()) << "\n";

    std::cout << "transfer bob -> alice, 99.0000: ";
    Status overdraft = Transfer(db.get(), "bob", "alice", 990000);
    std::cout << (overdraft.ok() ? "committed" : overdraft.ToString())
              << "  (aborted atomically — no partial effects)\n\n";
    PrintAccounts(*db);
    std::cout << "\nlogical time (one tick per committed bracket): "
              << db->logical_time() << "\n";
    // The process "crashes" here: no checkpoint, only the WAL survives.
  }

  std::cout << "\n=== Session 2: reopen — WAL recovery (§4.3 durability) "
               "===\n\n";
  {
    auto db_or = Database::Open({.directory = dir});
    Check(db_or.status());
    std::unique_ptr<Database> db = std::move(*db_or);
    PrintAccounts(*db);
    std::cout << "\nrecovered logical time: " << db->logical_time() << "\n";
    Check(db->Checkpoint());
    std::cout << "checkpointed; WAL truncated.\n";
  }
  return 0;
}
