// The mra query server daemon: serves a (optionally durable) database to
// concurrent XRA clients over the binary wire protocol (docs/SERVER.md).
//
//   $ ./build/examples/mra_serverd --port 7411 --dir /var/lib/mra
//   mra_serverd listening on 127.0.0.1:7411
//
// Connect with the REPL:  ./build/examples/xra_repl --connect 127.0.0.1:7411
//
// Stops on SIGTERM/SIGINT or a client Shutdown frame, draining in-flight
// requests before exiting (and checkpointing a durable database so the
// next start recovers without WAL replay).

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>

#include "mra/common/config.h"
#include "mra/fault/failpoint.h"
#include "mra/net/server.h"
#include "mra/obs/op_metrics.h"
#include "mra/obs/slow_log.h"
#include "mra/obs/trace.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int sig) { g_signal = sig; }

void Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --host H                bind address (default 127.0.0.1)\n"
      << "  --port N                TCP port; 0 picks one (default 7411)\n"
      << "  --dir PATH              durable database directory (default: "
         "in-memory)\n"
      << "  --max-sessions N        concurrent session cap (default 64)\n"
      << "  --request-timeout-ms N  per-request deadline (default 30000)\n"
      << "  --idle-timeout-ms N     reap idle sessions after N ms; 0 keeps "
         "them (default 300000)\n"
      << "  --shed-grace-ms N       shed with Busy after N ms at the session "
         "cap; negative queues forever (default 1000)\n"
      << "  --busy-retry-after-ms N retry-after hint in Busy frames "
         "(default 200)\n"
      << "  --slow-query-ms N       log queries at/over N ms to the "
         "slow-query log (\\slowlog; 0 logs all, default -1 = off)\n"
      << "  --trace                 record trace spans server-side "
         "(\\trace <id> in a connected REPL pulls them by query id)\n"
      << "  --exec-timing / --no-exec-timing\n"
      << "                          per-operator wall-time measurement "
         "(default on; feeds the stats trailer and exec.op_batch_us)\n"
      << "  --salvage-wal           recover the intact prefix of a corrupt "
         "WAL instead of refusing to start\n"
      << "  --failpoints SPEC       arm fault-injection sites, e.g. "
         "\"wal.sync=error:after=3\" (docs/RECOVERY.md)\n"
      << "Execution knobs (the ExecConfig registry — also settable per "
         "session with `set <knob> = <value>;`; docs/PARALLELISM.md):\n"
      << mra::ConfigFlagHelp()
      << "  (--statement-timeout-ms 0 derives the deadline from "
         "--request-timeout-ms; docs/GOVERNANCE.md)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mra;  // NOLINT — example brevity

  DatabaseOptions db_options;
  net::ServerOptions options;
  options.port = 7411;
  // Operator timing on by default: it is what makes the per-query stats
  // trailer and exec.op_batch_us meaningful, and bench/e17_obs_overhead
  // pins its cost under 3%.  --no-exec-timing turns it off.
  bool exec_timing = true;

  // ExecConfig-owned flags (--batch-size, --workers, --statement-timeout-ms,
  // …) route through the shared registry; the loop below only sees the
  // server-specific remainder.
  if (Status flags = ParseConfigFlags(&argc, argv, &options.interpreter);
      !flags.ok()) {
    std::cerr << flags.ToString() << "\n";
    return 2;
  }

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      options.host = next();
    } else if (arg == "--port") {
      options.port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--dir") {
      db_options.directory = next();
    } else if (arg == "--max-sessions") {
      options.max_sessions = std::atoi(next());
    } else if (arg == "--request-timeout-ms") {
      options.request_timeout_ms = std::atoi(next());
    } else if (arg == "--idle-timeout-ms") {
      options.idle_timeout_ms = std::atoi(next());
    } else if (arg == "--shed-grace-ms") {
      options.shed_grace_ms = std::atoi(next());
    } else if (arg == "--busy-retry-after-ms") {
      options.busy_retry_after_ms =
          static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--slow-query-ms") {
      obs::SlowQueryLog::Global().SetThresholdMs(
          std::strtoll(next(), nullptr, 10));
    } else if (arg == "--trace") {
      obs::Tracer::Global().SetEnabled(true);
    } else if (arg == "--exec-timing") {
      exec_timing = true;
    } else if (arg == "--no-exec-timing") {
      exec_timing = false;
    } else if (arg == "--salvage-wal") {
      db_options.salvage_wal = true;
    } else if (arg == "--failpoints") {
      Status armed =
          fault::FaultRegistry::Global().ConfigureFromSpec(next());
      if (!armed.ok()) {
        std::cerr << "bad --failpoints spec: " << armed.ToString() << "\n";
        return 2;
      }
    } else {
      Usage(argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  obs::SetExecTiming(exec_timing);

  auto db_or = Database::Open(db_options);
  if (!db_or.ok()) {
    std::cerr << "cannot open database: " << db_or.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<Database> db = std::move(*db_or);

  net::Server server(db.get(), options);
  Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "cannot start server: " << started.ToString() << "\n";
    return 1;
  }

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);

  std::cout << "mra_serverd listening on " << options.host << ":"
            << server.port()
            << (db_options.directory.empty()
                    ? " (in-memory database)"
                    : " (durable database at " + db_options.directory + ")")
            << std::endl;

  // The signal handler can only set a flag; this loop turns the flag (or a
  // client-initiated drain) into the actual shutdown.
  while (g_signal == 0 && !server.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cout << "draining..." << std::endl;
  server.Shutdown();

  if (!db_options.directory.empty()) {
    Status cp = db->Checkpoint();
    if (!cp.ok()) std::cerr << "checkpoint failed: " << cp.ToString() << "\n";
  }
  std::cout << "bye." << std::endl;
  return 0;
}
