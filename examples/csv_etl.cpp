// A small ETL pipeline: load CSV files into relations, clean and join them
// with the multi-set algebra, aggregate, and export the result as CSV —
// the library as an embeddable data-processing engine.
//
//   $ ./build/examples/csv_etl [output.csv]

#include <iostream>

#include "mra/algebra/ops.h"
#include "mra/util/csv.h"
#include "mra/util/printer.h"

namespace {

using namespace mra;  // NOLINT — example brevity

template <typename T>
T Check(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    std::exit(1);
  }
}

// Inline "files" — in a real pipeline these arrive on disk; note the
// repeated order rows: multi-set semantics keeps them, and the revenue
// aggregate depends on it.
constexpr char kOrdersCsv[] =
    "customer,item,qty\n"
    "ann,hops,3\n"
    "ann,hops,3\n"      // a genuine duplicate order line
    "ann,malt,1\n"
    "bob,hops,5\n"
    "bob,yeast,2\n"
    "carol,malt,4\n";

constexpr char kPricesCsv[] =
    "item,price\n"
    "hops,9.99\n"
    "malt,4.50\n"
    "yeast,12.00\n";

}  // namespace

int main(int argc, char** argv) {
  // Extract.
  RelationSchema orders_schema("orders", {{"customer", Type::String()},
                                          {"item", Type::String()},
                                          {"qty", Type::Int()}});
  RelationSchema prices_schema("prices", {{"item", Type::String()},
                                          {"price", Type::Decimal()}});
  Relation orders = Check(util::RelationFromCsv(kOrdersCsv, orders_schema));
  Relation prices = Check(util::RelationFromCsv(kPricesCsv, prices_schema));

  std::cout << "Loaded " << orders.size() << " order lines ("
            << orders.distinct_size() << " distinct — duplicates kept!) and "
            << prices.size() << " prices.\n\n";

  // Transform: join on item, compute line revenue, aggregate per customer.
  // revenue = qty * price; under set semantics ann's duplicate hops order
  // would silently vanish here — the paper's Example 3.2 failure mode.
  Relation joined = Check(ops::Join(Eq(Attr(1), Attr(3)), orders, prices));
  Relation lines = Check(ops::Project(
      {Attr(0), Attr(1), Mul(Attr(2), Attr(4))}, joined,
      {"customer", "item", "revenue"}));
  Relation per_customer = Check(ops::GroupBy(
      {0},
      {{AggKind::kSum, 2, "revenue"}, {AggKind::kCnt, 0, "lines"}},
      lines));

  std::cout << "Revenue per customer:\n";
  util::PrintRelation(std::cout, per_customer);

  // Load (export).
  std::string out_path = argc > 1 ? argv[1] : "/tmp/mra_etl_out.csv";
  Check(util::SaveCsvFile(out_path, per_customer));
  std::cout << "\nwrote " << out_path << ":\n"
            << util::RelationToCsv(per_customer);
  return 0;
}
