// An interactive shell for XRA — the textual extended relational algebra,
// after PRISMA/DB's primary database language.
//
//   $ ./build/examples/xra_repl [database-directory]
//   $ ./build/examples/xra_repl --connect host:port
//
// With a directory argument the database is durable (WAL + checkpoint) and
// your relations survive restarts.  With --connect the shell speaks the
// wire protocol to a running mra_serverd instead of embedding an engine
// (statements run server-side; \metrics shows the *server's* registry).
// Statements end with ';'.  Examples:
//
//   create beer(name: string, brewery: string, alcperc: real);
//   insert(beer, {('pils', 'Guineken', 5.0) : 2, ('stout', 'Kirin', 4.2)});
//   ? select(%3 > 4.5, beer);
//   begin x := unique(project([%1], beer)); ? x end;
//   update(beer, select(%2 = 'Guineken', beer), [%1, %2, %3 * 1.1]);
//
// Meta commands: \h help, \d list relations, \q quit, \checkpoint.

#include <iostream>
#include <string>

#include "mra/lang/interpreter.h"
#include "mra/net/client.h"
#include "mra/obs/metrics.h"
#include "mra/obs/trace.h"
#include "mra/util/printer.h"

namespace {

using namespace mra;  // NOLINT — example brevity

constexpr char kHelp[] = R"(XRA statements (end with ';'):
  create <name>(<attr>: <type>, ...)    define a relation (types: bool,
                                        int, decimal, real, string, date)
  drop <name>                           remove a relation
  insert(<name>, E)                     R <- R union E
  delete(<name>, E)                     R <- R - E
  update(<name>, E, [e1, ..., en])      R <- (R - E) union proj(R intersect E)
  <name> := E                           bind a temporary (inside begin/end)
  ? E                                   query
  explain [analyze] E                   show plans; analyze also executes
  begin s1; ...; sn end                 transaction bracket (atomic)
  constraint <name> (E)                 integrity constraint: E must stay
                                        empty in every committed state
  drop constraint <name>

Expressions E:
  <name> | {(v, ...) : n, ...} | empty(a: t, ...)
  union(E, E) | diff(E, E) | intersect(E, E) | product(E, E)
  join(cond, E, E) | select(cond, E) | project([e, ...], E) | unique(E)
  groupby([%i, ...], agg(%i), ..., E)   with agg in cnt sum avg min max

Conditions/expressions use %1, %2, ... for attributes; literals include
42, 3.14, 'text', true, date'1994-02-14', dec'9.99'.

Meta: \h help, \d relations, \e <E> explain plans, \ea <E> explain analyze,
      \metrics [json|reset] process metrics, \trace [on|off] spans,
      \checkpoint, \q quit.)";

void PrintRelations(const Database& db) {
  for (const std::string& name : db.catalog().RelationNames()) {
    auto rel = db.catalog().GetRelation(name);
    if (rel.ok()) {
      std::cout << "  " << (*rel)->schema().ToString() << "  ["
                << (*rel)->size() << " tuples, " << (*rel)->distinct_size()
                << " distinct]\n";
    }
  }
}

void PrintResult(const Relation& result) {
  // `explain` delivers its text as a one-tuple relation; print the text
  // itself rather than a one-cell table.
  if (result.schema().name() == "explain" && result.schema().arity() == 1 &&
      result.distinct_size() == 1) {
    std::cout << result.begin()->first.at(0).string_value();
    return;
  }
  util::PrintOptions print_options;
  print_options.max_rows = 40;
  util::PrintRelation(std::cout, result, print_options);
}

constexpr char kClientHelp[] =
    R"(Connected to a remote server: statements run server-side (type \h
locally known statements are the same as the embedded shell's).

Meta: \h help, \metrics server metrics (JSON), \ping liveness probe,
      \shutdown drain and stop the server, \q quit.)";

// The --connect mode: the same line-buffered loop, but every statement
// travels to a server as a Script frame and results come back as
// serialized relations.
int RunClientMode(const std::string& spec) {
  auto host_port = net::ParseHostPort(spec);
  if (!host_port.ok()) {
    std::cerr << host_port.status().ToString() << "\n";
    return 2;
  }
  net::ClientOptions client_options;
  client_options.client_name = "xra_repl";
  auto client_or =
      net::Client::Connect(host_port->first, host_port->second, client_options);
  if (!client_or.ok()) {
    std::cerr << "cannot connect to " << spec << ": "
              << client_or.status().ToString() << "\n";
    return 1;
  }
  net::Client client = std::move(*client_or);
  std::cout << "connected to " << client.server_banner() << " at " << spec
            << " (protocol v" << client.server_version() << ").\n"
            << "Type \\h for help, \\q to quit.\n";

  std::string buffer;
  std::string line;
  while (true) {
    std::cout << (buffer.empty() ? "xra> " : "...> ") << std::flush;
    if (!std::getline(std::cin, line)) break;

    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      if (line == "\\q") break;
      if (line == "\\h") {
        std::cout << kClientHelp << "\n";
      } else if (line == "\\metrics") {
        auto stats = client.ServerStats();
        std::cout << (stats.ok() ? *stats : stats.status().ToString()) << "\n";
      } else if (line == "\\ping") {
        Status s = client.Ping();
        std::cout << (s.ok() ? "pong.\n" : s.ToString() + "\n");
      } else if (line == "\\shutdown") {
        Status s = client.RequestShutdown();
        if (!s.ok()) {
          std::cout << s.ToString() << "\n";
        } else {
          std::cout << "server draining; bye.\n";
          return 0;
        }
      } else {
        std::cout << "unknown meta command in --connect mode (try \\h)\n";
      }
      continue;
    }

    buffer += line;
    buffer += '\n';
    auto trimmed = buffer.find_last_not_of(" \t\n");
    if (trimmed == std::string::npos) {
      buffer.clear();
      continue;
    }
    if (buffer[trimmed] != ';') continue;

    auto results = client.ExecuteScript(buffer);
    if (results.ok()) {
      for (const Relation& r : *results) PrintResult(r);
    } else {
      std::cout << results.status().ToString() << "\n";
      if (!client.connected()) {
        std::cout << "connection lost.\n";
        return 1;
      }
    }
    buffer.clear();
  }
  std::cout << "\nbye.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2 && std::string(argv[1]) == "--connect") {
    return RunClientMode(argv[2]);
  }
  DatabaseOptions options;
  if (argc > 1) options.directory = argv[1];
  auto db_or = Database::Open(options);
  if (!db_or.ok()) {
    std::cerr << "cannot open database: " << db_or.status().ToString()
              << "\n";
    return 1;
  }
  std::unique_ptr<Database> db = std::move(*db_or);
  lang::Interpreter interp(db.get());

  std::cout << "mra XRA shell — a multi-set extended relational algebra "
               "(Grefen & de By, ICDE 1994).\n"
            << (options.directory.empty()
                    ? "In-memory database; pass a directory for durability.\n"
                    : "Durable database at " + options.directory + ".\n")
            << "Type \\h for help, \\q to quit.\n";

  std::string buffer;
  std::string line;
  while (true) {
    std::cout << (buffer.empty() ? "xra> " : "...> ") << std::flush;
    if (!std::getline(std::cin, line)) break;

    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      if (line == "\\q") break;
      if (line == "\\h") {
        std::cout << kHelp << "\n";
      } else if (line == "\\d") {
        PrintRelations(*db);
      } else if (line.rfind("\\ea ", 0) == 0) {
        auto explained = interp.ExplainAnalyze(line.substr(4));
        std::cout << (explained.ok() ? *explained
                                     : explained.status().ToString())
                  << "\n";
      } else if (line.rfind("\\e ", 0) == 0) {
        auto explained = interp.Explain(line.substr(3));
        std::cout << (explained.ok() ? *explained
                                     : explained.status().ToString())
                  << "\n";
      } else if (line == "\\metrics") {
        std::cout << obs::MetricsRegistry::Global().RenderText();
      } else if (line == "\\metrics json") {
        std::cout << obs::MetricsRegistry::Global().RenderJson() << "\n";
      } else if (line == "\\metrics reset") {
        obs::MetricsRegistry::Global().Reset();
        std::cout << "metrics reset.\n";
      } else if (line == "\\trace on") {
        obs::Tracer::Global().SetEnabled(true);
        obs::Tracer::Global().Clear();
        std::cout << "tracing on.\n";
      } else if (line == "\\trace off") {
        obs::Tracer::Global().SetEnabled(false);
        std::cout << "tracing off.\n";
      } else if (line == "\\trace") {
        std::cout << obs::Tracer::Global().Render();
      } else if (line == "\\checkpoint") {
        Status s = db->Checkpoint();
        std::cout << (s.ok() ? "checkpointed.\n" : s.ToString() + "\n");
      } else {
        std::cout << "unknown meta command (try \\h)\n";
      }
      continue;
    }

    buffer += line;
    buffer += '\n';
    // Execute once the statement terminator appears.  `begin … end` blocks
    // also end with ';' after `end`.
    auto trimmed = buffer.find_last_not_of(" \t\n");
    if (trimmed == std::string::npos) {
      buffer.clear();
      continue;
    }
    if (buffer[trimmed] != ';') continue;

    Status s = interp.ExecuteScript(
        buffer, [](const std::string& query, const Relation& result) {
          std::cout << query << "\n";
          PrintResult(result);
        });
    if (!s.ok()) std::cout << s.ToString() << "\n";
    buffer.clear();
  }
  std::cout << "\nbye.\n";
  return 0;
}
