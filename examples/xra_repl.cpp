// An interactive shell for XRA — the textual extended relational algebra,
// after PRISMA/DB's primary database language.
//
//   $ ./build/examples/xra_repl [database-directory] [--batch-size N]
//   $ ./build/examples/xra_repl --workers 4 --query-mem-budget-mb 64
//   $ ./build/examples/xra_repl --connect host:port
//
// With a directory argument the database is durable (WAL + checkpoint) and
// your relations survive restarts.  With --connect the shell speaks the
// wire protocol to a running mra_serverd instead of embedding an engine
// (statements run server-side; \metrics shows the *server's* registry).
// Every ExecConfig knob is a flag (mra::ParseConfigFlags — the same
// registry behind `set <knob> = <value>;` and `\set`): --batch-size,
// --workers, --morsel-size, --statement-timeout-ms, … (--help lists them;
// docs/PARALLELISM.md has the reference).  In --connect mode the server's
// own settings apply.  --slow-query-ms N arms the embedded slow-query log
// (\slowlog): queries at or over N ms land there as JSON lines (0 logs
// everything).
//
// Both modes drive one mra::session::Session, so the loop below never
// branches on where the database lives.  Statements end with ';'.
// Examples:
//
//   create beer(name: string, brewery: string, alcperc: real);
//   insert(beer, {('pils', 'Guineken', 5.0) : 2, ('stout', 'Kirin', 4.2)});
//   ? select(%3 > 4.5, beer);
//   begin x := unique(project([%1], beer)); ? x end;
//   update(beer, select(%2 = 'Guineken', beer), [%1, %2, %3 * 1.1]);
//
// Meta commands: \h help, \d list relations, \q quit, \checkpoint.

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>

#include "mra/common/config.h"
#include "mra/obs/metrics.h"
#include "mra/obs/slow_log.h"
#include "mra/obs/trace.h"
#include "mra/session/session.h"
#include "mra/util/printer.h"

namespace {

using namespace mra;  // NOLINT — example brevity

// Ctrl-C cancels the query in flight, not the shell: the handler may only
// flip this flag (async-signal-safe store); the embedded interpreter and
// the remote client both poll it at batch/wait boundaries.  It is reset
// before each statement so a stray Ctrl-C at the prompt cannot kill the
// next query (docs/GOVERNANCE.md).
std::shared_ptr<std::atomic<bool>> g_cancel =
    std::make_shared<std::atomic<bool>>(false);

void OnInterrupt(int) { g_cancel->store(true, std::memory_order_relaxed); }

constexpr char kHelp[] = R"(XRA statements (end with ';'):
  create <name>(<attr>: <type>, ...)    define a relation (types: bool,
                                        int, decimal, real, string, date)
  drop <name>                           remove a relation
  insert(<name>, E)                     R <- R union E
  delete(<name>, E)                     R <- R - E
  update(<name>, E, [e1, ..., en])      R <- (R - E) union proj(R intersect E)
  <name> := E                           bind a temporary (inside begin/end)
  ? E                                   query
  explain [analyze] E                   show plans; analyze also executes
  analyze <name>                        collect optimizer statistics
  set <knob> = <value>                  session config override (\set lists)
  begin s1; ...; sn end                 transaction bracket (atomic)
  constraint <name> (E)                 integrity constraint: E must stay
                                        empty in every committed state
  drop constraint <name>

Expressions E:
  <name> | {(v, ...) : n, ...} | empty(a: t, ...)
  union(E, E) | diff(E, E) | intersect(E, E) | product(E, E)
  join(cond, E, E) | select(cond, E) | project([e, ...], E) | unique(E)
  groupby([%i, ...], agg(%i), ..., E)   with agg in cnt sum avg min max

Conditions/expressions use %1, %2, ... for attributes; literals include
42, 3.14, 'text', true, date'1994-02-14', dec'9.99'.

Meta: \h help, \d relations, \e <E> explain plans, \ea <E> explain analyze,
      \analyze <name> collect optimizer statistics (same as `analyze <name>;`),
      \set show all knobs, \set <knob> <value> override one (same registry
      as `set <knob> = <value>;` — workers, batch_size, morsel_size, …),
      \metrics [json|prom|reset] process metrics, \trace [on|off] spans,
      \slowlog slow-query log, \checkpoint, \q quit.

Ctrl-C cancels the query in flight (the shell survives); --statement-timeout-ms
and --query-mem-budget-mb bound every query (docs/GOVERNANCE.md); --workers N
enables intra-query parallelism (docs/PARALLELISM.md).)";

constexpr char kClientHelp[] =
    R"(Connected to a remote server: statements run server-side (the
statements are the same as the embedded shell's).

Meta: \h help, \metrics [prom|text] server metrics (JSON by default),
      \top live server introspection (sessions, latency histogram, sheds),
      \slowlog the server's slow-query log (JSON lines),
      \trace [id] server-side trace spans (defaults to your last query),
      \last your last query's server-side stats (id, phases, operators),
      \cancel <id> kill the running query with that id (any session; ids
      show in \top), \ping liveness probe, \shutdown drain and stop the
      server, \q quit.  Ctrl-C cancels your own in-flight query.)";

void PrintRelations(const Database& db) {
  for (const std::string& name : db.catalog().RelationNames()) {
    auto rel = db.catalog().GetRelation(name);
    if (rel.ok()) {
      std::cout << "  " << (*rel)->schema().ToString() << "  ["
                << (*rel)->size() << " tuples, " << (*rel)->distinct_size()
                << " distinct]\n";
    }
  }
}

void PrintResult(const Relation& result) {
  // `explain` and `analyze` deliver their text as a one-tuple relation;
  // print the text itself rather than a one-cell table.
  if ((result.schema().name() == "explain" ||
       result.schema().name() == "analyze") &&
      result.schema().arity() == 1 && result.distinct_size() == 1) {
    std::cout << result.begin()->first.at(0).string_value();
    return;
  }
  util::PrintOptions print_options;
  print_options.max_rows = 40;
  util::PrintRelation(std::cout, result, print_options);
}

void PrintLatencySummary(const obs::HistogramData& h) {
  std::cout << "  query latency (exec.query_us): count=" << h.count
            << " p50=" << h.Quantile(0.50) << "us p95=" << h.Quantile(0.95)
            << "us p99=" << h.Quantile(0.99) << "us max=" << h.max_micros
            << "us\n";
}

void PrintServerTop(const net::ServerStatsReply& top) {
  std::cout << "server up " << top.uptime_us / 1'000'000 << "s, sessions "
            << top.active_sessions << " active / " << top.sessions_served
            << " served, queries=" << top.queries << " sheds=" << top.sheds
            << " slow_logged=" << top.slow_logged << "\n";
  PrintLatencySummary(top.query_latency);
  if (top.sessions.empty()) {
    std::cout << "  (no live sessions)\n";
    return;
  }
  std::cout << "  " << std::left << std::setw(6) << "id" << std::setw(16)
            << "peer" << std::setw(5) << "busy" << std::setw(9) << "queries"
            << std::setw(12) << "last_us" << std::setw(9) << "idle_ms"
            << "current query\n";
  for (const net::ServerSessionInfo& s : top.sessions) {
    std::cout << "  " << std::left << std::setw(6) << s.id << std::setw(16)
              << s.peer << std::setw(5) << (s.busy ? "*" : "-")
              << std::setw(9) << s.queries << std::setw(12)
              << s.last_latency_us << std::setw(9) << s.idle_ms
              << (s.current_query.empty() ? "(idle)" : s.current_query)
              << "\n";
  }
  std::cout << std::right;
}

void PrintLastQueryStats(const session::Session& sess) {
  const lang::QueryStats* stats = sess.last_query_stats();
  if (stats == nullptr) {
    std::cout << "no per-query stats yet (run a query first; remote "
                 "servers need protocol v3).\n";
    return;
  }
  std::cout << "query " << stats->query_id << ": rows=" << stats->result_rows
            << " total=" << stats->total_us << "us (bind=" << stats->bind_us
            << " optimize=" << stats->optimize_us
            << " lower=" << stats->lower_us << " exec=" << stats->exec_us
            << ")\n";
  for (const lang::QueryStats::OpStats& op : stats->operators) {
    std::cout << "  " << std::string(2 * op.depth, ' ') << op.name
              << " rows=" << op.metrics.rows_emitted
              << " weighted=" << op.metrics.weighted_rows;
    if (op.metrics.batches_emitted > 0) {
      std::cout << " batches=" << op.metrics.batches_emitted;
    }
    if (op.metrics.timed) {
      std::cout << " time=" << op.metrics.total_ns() / 1000 << "us";
    }
    std::cout << "\n";
  }
}

// Meta commands: the shared set works against any Session; embedded-only
// (\d, \e, \ea, \trace, \checkpoint, local metrics) and remote-only
// (\ping, \shutdown) commands reach through the concrete type's escape
// hatch.  Returns false when the shell should exit; commands that exit
// without the farewell banner set *exit_code (otherwise it stays -1).
bool HandleMeta(const std::string& line, session::Session& sess,
                session::EmbeddedSession* embedded,
                session::RemoteSession* remote, int* exit_code) {
  if (line == "\\q") {
    return false;
  }
  if (line == "\\h") {
    std::cout << (embedded ? kHelp : kClientHelp) << "\n";
    return true;
  }
  if (embedded != nullptr) {
    if (line == "\\d") {
      PrintRelations(embedded->database());
    } else if (line.rfind("\\ea ", 0) == 0) {
      auto explained = embedded->interpreter().ExplainAnalyze(line.substr(4));
      std::cout << (explained.ok() ? *explained
                                   : explained.status().ToString())
                << "\n";
    } else if (line.rfind("\\e ", 0) == 0) {
      auto explained = embedded->interpreter().Explain(line.substr(3));
      std::cout << (explained.ok() ? *explained
                                   : explained.status().ToString())
                << "\n";
    } else if (line.rfind("\\analyze ", 0) == 0) {
      // Sugar for the statement form: routes through the session so remote
      // and embedded behave identically.
      auto result = sess.Execute("analyze " + line.substr(9) + ";");
      if (result.ok()) {
        for (const session::QueryResult::Item& item : result->items) {
          PrintResult(item.relation);
          std::cout << "\n";
        }
      } else {
        std::cout << result.status().ToString() << "\n";
      }
    } else if (line == "\\set") {
      std::cout << embedded->interpreter().options().Describe();
    } else if (line.rfind("\\set ", 0) == 0) {
      // \set <knob> shows one knob; \set <knob> <value> overrides it — the
      // same registry as the `set <knob> = <value>;` statement.
      std::string rest = line.substr(5);
      auto space = rest.find(' ');
      if (space == std::string::npos) {
        auto value = embedded->interpreter().options().Get(rest);
        std::cout << (value.ok() ? rest + " = " + *value
                                 : value.status().ToString())
                  << "\n";
      } else {
        std::string knob = rest.substr(0, space);
        std::string value = rest.substr(rest.find_first_not_of(' ', space));
        Status s = embedded->interpreter().SetOption(knob, value);
        if (s.ok()) {
          std::cout << knob << " = "
                    << *embedded->interpreter().options().Get(knob) << "\n";
        } else {
          std::cout << s.ToString() << "\n";
        }
      }
    } else if (line == "\\metrics") {
      std::cout << obs::MetricsRegistry::Global().RenderText();
    } else if (line == "\\metrics json") {
      auto stats = sess.Stats();
      std::cout << (stats.ok() ? *stats : stats.status().ToString()) << "\n";
    } else if (line == "\\metrics prom") {
      std::cout << obs::MetricsRegistry::Global().RenderPrometheus();
    } else if (line == "\\slowlog") {
      std::string lines = obs::SlowQueryLog::Global().RenderJsonLines();
      std::cout << (lines.empty() ? "(slow-query log empty)\n" : lines);
    } else if (line == "\\last") {
      PrintLastQueryStats(sess);
    } else if (line == "\\metrics reset") {
      obs::MetricsRegistry::Global().Reset();
      std::cout << "metrics reset.\n";
    } else if (line == "\\trace on") {
      obs::Tracer::Global().SetEnabled(true);
      obs::Tracer::Global().Clear();
      std::cout << "tracing on.\n";
    } else if (line == "\\trace off") {
      obs::Tracer::Global().SetEnabled(false);
      std::cout << "tracing off.\n";
    } else if (line == "\\trace") {
      std::cout << obs::Tracer::Global().Render();
    } else if (line == "\\checkpoint") {
      Status s = embedded->database().Checkpoint();
      std::cout << (s.ok() ? "checkpointed.\n" : s.ToString() + "\n");
    } else if (line.rfind("\\cancel", 0) == 0) {
      std::cout << "embedded queries run in this thread — press Ctrl-C to "
                   "cancel the one in flight.\n";
    } else {
      std::cout << "unknown meta command (try \\h)\n";
    }
    return true;
  }
  if (line == "\\metrics") {
    auto stats = sess.Stats();
    std::cout << (stats.ok() ? *stats : stats.status().ToString()) << "\n";
  } else if (line == "\\metrics prom" || line == "\\metrics text") {
    auto stats = remote->client().ServerStats(line.substr(9));
    std::cout << (stats.ok() ? *stats : stats.status().ToString()) << "\n";
  } else if (line == "\\top") {
    auto top = remote->client().FetchServerStats();
    if (top.ok()) {
      PrintServerTop(*top);
    } else {
      std::cout << top.status().ToString() << "\n";
    }
  } else if (line == "\\slowlog") {
    auto top = remote->client().FetchServerStats();
    if (!top.ok()) {
      std::cout << top.status().ToString() << "\n";
    } else if (top->slow_log.empty()) {
      std::cout << "(server slow-query log empty)\n";
    } else {
      for (const std::string& entry : top->slow_log) {
        std::cout << entry << "\n";
      }
    }
  } else if (line == "\\trace" || line.rfind("\\trace ", 0) == 0) {
    uint64_t id = line == "\\trace"
                      ? sess.last_query_id()
                      : std::strtoull(line.c_str() + 7, nullptr, 10);
    auto top = remote->client().FetchServerStats(id);
    if (!top.ok()) {
      std::cout << top.status().ToString() << "\n";
    } else if (top->trace.empty()) {
      std::cout << "(no trace spans"
                << (id != 0 ? " for query " + std::to_string(id) : "")
                << "; is the server tracing? mra_serverd --trace)\n";
    } else {
      std::cout << top->trace;
    }
  } else if (line == "\\last") {
    PrintLastQueryStats(sess);
  } else if (line.rfind("\\cancel", 0) == 0) {
    uint64_t id = line.size() > 8
                      ? std::strtoull(line.c_str() + 8, nullptr, 10)
                      : 0;
    if (id == 0) {
      std::cout << "usage: \\cancel <query-id>  (running ids show in \\top)\n";
    } else {
      auto delivered = remote->client().Cancel(id);
      if (!delivered.ok()) {
        std::cout << delivered.status().ToString() << "\n";
      } else if (*delivered) {
        std::cout << "cancel delivered to query " << id << ".\n";
      } else {
        std::cout << "query " << id
                  << " is not running (already finished?).\n";
      }
    }
  } else if (line == "\\ping") {
    Status s = sess.Ping();
    std::cout << (s.ok() ? "pong.\n" : s.ToString() + "\n");
  } else if (line == "\\shutdown") {
    Status s = remote->client().RequestShutdown();
    if (!s.ok()) {
      std::cout << s.ToString() << "\n";
    } else {
      std::cout << "server draining; bye.\n";
      *exit_code = 0;
      return false;
    }
  } else {
    std::cout << "unknown meta command in --connect mode (try \\h)\n";
  }
  return true;
}

// The line-buffered loop both modes share: accumulate until a trailing
// ';', then Execute() the script through the session.
int RunShell(session::Session& sess, session::EmbeddedSession* embedded,
             session::RemoteSession* remote) {
  std::string buffer;
  std::string line;
  int exit_code = -1;
  while (true) {
    std::cout << (buffer.empty() ? "xra> " : "...> ") << std::flush;
    if (!std::getline(std::cin, line)) break;

    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      if (!HandleMeta(line, sess, embedded, remote, &exit_code)) {
        if (exit_code >= 0) return exit_code;
        break;
      }
      continue;
    }

    buffer += line;
    buffer += '\n';
    // Execute once the statement terminator appears.  `begin … end` blocks
    // also end with ';' after `end`.
    auto trimmed = buffer.find_last_not_of(" \t\n");
    if (trimmed == std::string::npos) {
      buffer.clear();
      continue;
    }
    if (buffer[trimmed] != ';') continue;

    // A Ctrl-C that landed at the prompt must not kill this statement.
    g_cancel->store(false, std::memory_order_relaxed);
    auto result = sess.Execute(buffer);
    if (result.ok()) {
      for (const session::QueryResult::Item& item : result->items) {
        if (!item.query.empty()) std::cout << item.query << "\n";
        PrintResult(item.relation);
      }
    } else {
      std::cout << result.status().ToString() << "\n";
      if (remote != nullptr && !remote->client().connected()) {
        std::cout << "connection lost.\n";
        return 1;
      }
    }
    buffer.clear();
  }
  std::cout << "\nbye.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // ExecConfig-owned flags (--batch-size, --workers, --no-hash-ops, …) go
  // through the shared funnel; what remains is REPL-specific.
  ExecConfig config;
  if (Status flags = ParseConfigFlags(&argc, argv, &config); !flags.ok()) {
    std::cerr << flags.ToString() << "\n";
    return 1;
  }
  std::string connect_spec;
  std::string directory;
  long long slow_query_ms = -1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect_spec = argv[++i];
    } else if (arg == "--slow-query-ms" && i + 1 < argc) {
      slow_query_ms = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: xra_repl [database-directory] [flags]\n"
                   "  --connect host:port     speak to a running mra_serverd\n"
                   "  --slow-query-ms N       arm the slow-query log\n"
                << ConfigFlagHelp();
      return 0;
    } else {
      directory = std::move(arg);
    }
  }
  obs::SlowQueryLog::Global().SetThresholdMs(slow_query_ms);
  std::signal(SIGINT, OnInterrupt);

  if (!connect_spec.empty()) {
    if (config.governance.statement_timeout_ms != 0 ||
        config.governance.query_mem_budget_bytes != 0) {
      std::cerr << "note: --statement-timeout-ms/--query-mem-budget-mb are "
                   "embedded-engine settings; in --connect mode the "
                   "server's own flags govern queries.\n";
    }
    net::ClientOptions client_options;
    client_options.client_name = "xra_repl";
    client_options.interrupt = g_cancel;
    auto sess_or = session::RemoteSession::Connect(connect_spec,
                                                   client_options);
    if (!sess_or.ok()) {
      std::cerr << "cannot connect to " << connect_spec << ": "
                << sess_or.status().ToString() << "\n";
      return 1;
    }
    session::RemoteSession& sess = **sess_or;
    std::cout << "connected to " << sess.client().server_banner() << " at "
              << connect_spec << " (protocol v"
              << sess.client().server_version() << ").\n"
              << "Type \\h for help, \\q to quit.\n";
    return RunShell(sess, /*embedded=*/nullptr, &sess);
  }

  DatabaseOptions db_options;
  db_options.directory = directory;
  config.governance.cancel_token = g_cancel;
  auto sess_or = session::EmbeddedSession::Open(db_options, config);
  if (!sess_or.ok()) {
    std::cerr << "cannot open database: " << sess_or.status().ToString()
              << "\n";
    return 1;
  }
  session::EmbeddedSession& sess = **sess_or;

  std::cout << "mra XRA shell — a multi-set extended relational algebra "
               "(Grefen & de By, ICDE 1994).\n"
            << (db_options.directory.empty()
                    ? "In-memory database; pass a directory for durability.\n"
                    : "Durable database at " + db_options.directory + ".\n")
            << "Type \\h for help, \\q to quit.\n";
  return RunShell(sess, &sess, /*remote=*/nullptr);
}
