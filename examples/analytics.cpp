// Analytics over a generated warehouse: shows the optimizer at work on a
// multi-way join + aggregation query — logical plan before and after
// rewriting (join introduction, pushdown, early projection, build-side
// choice), the lowered physical plan, and the timing difference.
//
//   $ ./build/examples/analytics

#include <chrono>
#include <iostream>

#include "mra/catalog/catalog.h"
#include "mra/exec/physical_planner.h"
#include "mra/opt/optimizer.h"
#include "mra/opt/stats.h"
#include "mra/util/generator.h"
#include "mra/util/printer.h"

namespace {

using namespace mra;  // NOLINT — example brevity

template <typename T>
T Check(Result<T> result) {
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    std::exit(1);
  }
}

double MillisToRun(const PlanPtr& plan, const Catalog& catalog,
                   Relation* out) {
  auto start = std::chrono::steady_clock::now();
  *out = Check(exec::ExecutePlan(plan, catalog));
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int main() {
  // A beer warehouse: 200k beer rows with duplicates, 400 breweries.
  Catalog catalog;
  util::BeerDbOptions options;
  options.num_beers = 100000;
  options.num_breweries = 400;
  options.num_beer_names = 25000;
  options.duplicate_factor = 2.0;
  util::BeerDb db = Check(util::MakeBeerDb(options));
  Check(catalog.CreateRelation(db.beer.schema()));
  Check(catalog.SetRelation("beer", std::move(db.beer)));
  Check(catalog.CreateRelation(db.brewery.schema()));
  Check(catalog.SetRelation("brewery", std::move(db.brewery)));

  // The analyst's query, written naively as σ over × (as a SQL front end
  // would produce it): strong beers per country, averaged.
  //
  //   Γ_(country),AVG(alcperc)
  //     σ (beer.brewery = brewery.name AND alcperc > 6.0) (beer × brewery)
  PlanPtr beer = Plan::Scan(
      "beer", Check(catalog.GetRelation("beer"))->schema());
  PlanPtr brewery = Plan::Scan(
      "brewery", Check(catalog.GetRelation("brewery"))->schema());
  PlanPtr product = Check(Plan::Product(beer, brewery));
  PlanPtr filtered = Check(Plan::Select(
      And(Eq(Attr(1), Attr(3)), Gt(Attr(2), Lit(6.0))), product));
  PlanPtr query = Check(Plan::GroupBy(
      {5}, {{AggKind::kAvg, 2, "avg_alcperc"}, {AggKind::kCnt, 0, "beers"}},
      filtered));

  std::cout << "Naive logical plan (σ over ×, as translated from SQL):\n\n"
            << query->ToString() << "\n"
            << "estimated cardinality: "
            << opt::EstimateCardinality(*query, catalog) << "\n\n";

  opt::Optimizer optimizer(&catalog);
  PlanPtr optimized = Check(optimizer.Optimize(query));
  std::cout << "Optimized plan (Theorem 3.1 turned σ(×) into ⋈; the "
               "selection and an early projection moved below it):\n\n"
            << optimized->ToString() << "\n";

  std::cout << "Physical plan:\n\n"
            << Check(exec::LowerPlan(optimized, catalog))->ToString()
            << "\n";

  // Execute both and compare (identical results, different cost).
  // NOTE: the naive plan materialises beer × brewery = 80M+ tuples if run
  // definitionally; the physical engine streams it, but it is still the
  // slow path.
  Relation naive_result, optimized_result;
  double optimized_ms = MillisToRun(optimized, catalog, &optimized_result);
  double naive_ms = MillisToRun(query, catalog, &naive_result);

  std::cout << "naive plan:     " << naive_ms << " ms\n"
            << "optimized plan: " << optimized_ms << " ms  ("
            << (optimized_ms > 0 ? naive_ms / optimized_ms : 0)
            << "x speedup)\n"
            << "results identical: "
            << (naive_result.size() == optimized_result.size() ? "yes"
                                                               : "no")
            << "\n\n";

  util::PrintOptions print_options;
  print_options.max_rows = 10;
  util::PrintRelation(std::cout, optimized_result, print_options);
  return 0;
}
