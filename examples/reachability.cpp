// The recursive extension of §5: transitive closure in XRA, on a flight
// network.  Shows reachability queries composed with the ordinary algebra
// operators (which destinations are reachable from AMS, which city pairs
// need more than a direct flight), all through the textual language.
//
//   $ ./build/examples/reachability

#include <iostream>

#include "mra/lang/interpreter.h"
#include "mra/util/printer.h"

namespace {

using namespace mra;  // NOLINT — example brevity

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  auto db_or = Database::Open();
  Check(db_or.status());
  std::unique_ptr<Database> db = std::move(*db_or);
  lang::Interpreter interp(db.get());

  auto show = [](const std::string& query, const Relation& result) {
    std::cout << query << "\n";
    util::PrintRelation(std::cout, result);
    std::cout << "\n";
  };

  Check(interp.ExecuteScript(
      "create flight(origin: string, dest: string);"
      "insert(flight, {('AMS', 'LHR'), ('AMS', 'CDG'), ('LHR', 'JFK'),"
      "                ('CDG', 'JFK'), ('JFK', 'SFO'), ('SFO', 'NRT'),"
      "                ('NRT', 'SYD'), ('SYD', 'SFO')});",
      nullptr));

  std::cout << "Flight network (direct connections):\n\n";
  Check(interp.ExecuteScript("? flight;", show));

  std::cout << "All reachable city pairs — closure(flight) "
               "(§5's recursive extension; note the NRT/SYD/SFO cycle "
               "still terminates):\n\n";
  Check(interp.ExecuteScript("? closure(flight);", show));

  std::cout << "Destinations reachable from AMS:\n\n";
  Check(interp.ExecuteScript(
      "? project([%2], select(%1 = 'AMS', closure(flight)));", show));

  std::cout << "Pairs needing a connection (reachable but not direct) — "
               "the closure composed with the multi-set difference:\n\n";
  Check(interp.ExecuteScript(
      "? diff(closure(flight), unique(flight));", show));

  std::cout << "Cities on a cycle (they reach themselves):\n\n";
  Check(interp.ExecuteScript(
      "? project([%1], select(%1 = %2, closure(flight)));", show));
  return 0;
}
