// The recursive extension of §5: transitive closure in XRA, on a flight
// network.  Shows reachability queries composed with the ordinary algebra
// operators (which destinations are reachable from AMS, which city pairs
// need more than a direct flight), all through the textual language —
// driven through mra::session::Session, the same interface xra_repl uses
// (swap EmbeddedSession::Open for RemoteSession::Connect and this program
// runs against an mra_serverd instead).
//
//   $ ./build/examples/reachability

#include <iostream>

#include "mra/session/session.h"
#include "mra/util/printer.h"

namespace {

using namespace mra;  // NOLINT — example brevity

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    std::exit(1);
  }
}

// Runs one script through the session and prints each query result.
void Run(session::Session& sess, std::string_view script) {
  auto result = sess.Execute(script);
  Check(result.status());
  for (const session::QueryResult::Item& item : result->items) {
    std::cout << item.query << "\n";
    util::PrintRelation(std::cout, item.relation);
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  auto sess_or = session::EmbeddedSession::Open();
  Check(sess_or.status());
  session::Session& sess = **sess_or;

  Run(sess,
      "create flight(origin: string, dest: string);"
      "insert(flight, {('AMS', 'LHR'), ('AMS', 'CDG'), ('LHR', 'JFK'),"
      "                ('CDG', 'JFK'), ('JFK', 'SFO'), ('SFO', 'NRT'),"
      "                ('NRT', 'SYD'), ('SYD', 'SFO')});");

  std::cout << "Flight network (direct connections):\n\n";
  Run(sess, "? flight;");

  std::cout << "All reachable city pairs — closure(flight) "
               "(§5's recursive extension; note the NRT/SYD/SFO cycle "
               "still terminates):\n\n";
  Run(sess, "? closure(flight);");

  std::cout << "Destinations reachable from AMS:\n\n";
  Run(sess, "? project([%2], select(%1 = 'AMS', closure(flight)));");

  std::cout << "Pairs needing a connection (reachable but not direct) — "
               "the closure composed with the multi-set difference:\n\n";
  Run(sess, "? diff(closure(flight), unique(flight));");

  std::cout << "Cities on a cycle (they reach themselves):\n\n";
  Run(sess, "? project([%1], select(%1 = %2, closure(flight)));");
  return 0;
}
