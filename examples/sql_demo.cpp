// The SQL front end: every SQL statement is translated into an XRA
// statement of the extended relational algebra (the paper's "formal
// background for SQL" role) and executed through the same optimizer and
// physical engine.  The demo prints each translation next to its result.
//
//   $ ./build/examples/sql_demo

#include <iostream>

#include "mra/sql/sql_parser.h"
#include "mra/sql/translator.h"
#include "mra/util/printer.h"

namespace {

using namespace mra;  // NOLINT — example brevity

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    std::exit(1);
  }
}

// Runs one SQL statement, showing its XRA translation and any result.
void Run(Database* db, sql::SqlSession* session, const std::string& text) {
  std::cout << "sql> " << text << "\n";
  // Show the translation for translatable statements (not BEGIN/COMMIT).
  auto stmts = sql::ParseSql(text);
  Check(stmts.status());
  for (const sql::SqlStatement& stmt : *stmts) {
    if (!std::holds_alternative<sql::TxnControl>(stmt)) {
      auto translated = sql::TranslateStatement(stmt, db->catalog());
      if (translated.ok()) {
        std::cout << "xra> " << translated->ToString() << "\n";
      }
    }
  }
  Check(session->Execute(text, [](const std::string&, const Relation& r) {
    util::PrintRelation(std::cout, r);
  }));
  std::cout << "\n";
}

}  // namespace

int main() {
  auto db_or = Database::Open();
  Check(db_or.status());
  std::unique_ptr<Database> db = std::move(*db_or);
  sql::SqlSession session(db.get());

  Run(db.get(), &session,
      "CREATE TABLE beer (name STRING, brewery STRING, alcperc REAL)");
  Run(db.get(), &session,
      "CREATE TABLE brewery (name STRING, city STRING, country STRING)");
  Run(db.get(), &session,
      "INSERT INTO beer VALUES ('pils', 'Guineken', 5.0), "
      "('pils', 'Guineken', 5.0), ('dubbel', 'Guineken', 6.5), "
      "('dubbel', 'Bavapils', 7.0), ('stout', 'Kirin', 4.2)");
  Run(db.get(), &session,
      "INSERT INTO brewery VALUES ('Guineken', 'Amsterdam', 'NL'), "
      "('Bavapils', 'Lieshout', 'NL'), ('Kirin', 'Tokyo', 'JP')");

  std::cout << "--- SQL keeps duplicates (bag semantics), exactly as the "
               "algebra prescribes: ---\n\n";
  Run(db.get(), &session, "SELECT name FROM beer");
  Run(db.get(), &session, "SELECT DISTINCT name FROM beer");

  std::cout << "--- The paper's Example 3.2 (its SQL form, §3.2): ---\n\n";
  Run(db.get(), &session,
      "SELECT country, AVG(alcperc) FROM beer, brewery "
      "WHERE beer.brewery = brewery.name GROUP BY country");

  std::cout << "--- The paper's Example 4.1 (its SQL form, §4.1): ---\n\n";
  Run(db.get(), &session,
      "UPDATE beer SET alcperc = alcperc * 1.1 WHERE brewery = 'Guineken'");
  Run(db.get(), &session,
      "SELECT name, alcperc FROM beer WHERE brewery = 'Guineken'");

  std::cout << "--- Transactions map onto the paper's brackets "
               "(Definition 4.3): ---\n\n";
  Run(db.get(), &session,
      "BEGIN; DELETE FROM beer; SELECT COUNT(*) FROM beer; ROLLBACK");
  Run(db.get(), &session, "SELECT COUNT(*) FROM beer");
  return 0;
}
